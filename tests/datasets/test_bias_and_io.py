"""Tests for bias injection and dataset CSV persistence."""

import numpy as np
import pytest

from fairexp.datasets import (
    inject_label_bias,
    inject_measurement_bias,
    inject_proxy_feature,
    inject_selection_bias,
    load_csv,
    make_loan_dataset,
    proxy_correlation,
    save_csv,
)
from fairexp.exceptions import ValidationError


@pytest.fixture(scope="module")
def base_dataset():
    return make_loan_dataset(800, direct_bias=0.0, random_state=0)


class TestLabelBias:
    def test_lowers_protected_base_rate(self, base_dataset):
        biased = inject_label_bias(base_dataset, flip_rate=0.5, random_state=0)
        assert biased.base_rates()[1] < base_dataset.base_rates()[1]
        # Reference group untouched.
        assert biased.base_rates()[0] == pytest.approx(base_dataset.base_rates()[0])

    def test_zero_rate_is_noop(self, base_dataset):
        unchanged = inject_label_bias(base_dataset, flip_rate=0.0, random_state=0)
        assert np.array_equal(unchanged.y, base_dataset.y)

    def test_only_flips_positive_to_negative(self, base_dataset):
        biased = inject_label_bias(base_dataset, flip_rate=0.3, random_state=0)
        became_positive = (base_dataset.y == 0) & (biased.y == 1)
        assert not became_positive.any()


class TestSelectionBias:
    def test_reduces_protected_positives(self, base_dataset):
        biased = inject_selection_bias(base_dataset, keep_rate=0.3, random_state=0)
        original_positives = int((base_dataset.protected_mask & (base_dataset.y == 1)).sum())
        remaining_positives = int((biased.protected_mask & (biased.y == 1)).sum())
        assert remaining_positives < original_positives
        assert biased.n_samples < base_dataset.n_samples

    def test_keep_rate_one_keeps_everything(self, base_dataset):
        unchanged = inject_selection_bias(base_dataset, keep_rate=1.0, random_state=0)
        assert unchanged.n_samples == base_dataset.n_samples


class TestProxyAndMeasurement:
    def test_proxy_feature_correlates_with_sensitive(self, base_dataset):
        biased = inject_proxy_feature(base_dataset, feature="income", strength=0.9,
                                      random_state=0)
        assert abs(proxy_correlation(biased, "income")) > 0.7
        assert abs(proxy_correlation(base_dataset, "income")) < 0.3

    def test_measurement_bias_shifts_protected_only(self, base_dataset):
        biased = inject_measurement_bias(base_dataset, feature="credit_score", shift=-1.0)
        protected = base_dataset.protected_mask
        original = base_dataset.column("credit_score")
        shifted = biased.column("credit_score")
        assert np.all(shifted[protected] < original[protected])
        assert np.allclose(shifted[~protected], original[~protected])

    def test_unknown_feature_raises(self, base_dataset):
        with pytest.raises(ValidationError):
            inject_measurement_bias(base_dataset, feature="nope")


class TestCsvRoundTrip:
    def test_roundtrip_preserves_everything(self, base_dataset, tmp_path):
        path = save_csv(base_dataset, tmp_path / "loan.csv")
        loaded = load_csv(path)
        assert np.allclose(loaded.X, base_dataset.X)
        assert np.array_equal(loaded.y, base_dataset.y)
        assert loaded.sensitive == base_dataset.sensitive
        assert loaded.feature_names == base_dataset.feature_names
        assert [s.immutable for s in loaded.features] == [
            s.immutable for s in base_dataset.features
        ]
        assert [s.monotone for s in loaded.features] == [
            s.monotone for s in base_dataset.features
        ]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ValidationError):
            load_csv(tmp_path / "missing.csv")

    def test_missing_metadata_raises(self, base_dataset, tmp_path):
        path = save_csv(base_dataset, tmp_path / "loan.csv")
        path.with_suffix(path.suffix + ".meta.json").unlink()
        with pytest.raises(ValidationError):
            load_csv(path)
