"""Explanations of unfairness in recommendation systems.

Three surveyed approaches are implemented against the recommenders in
:mod:`fairexp.recsys`:

* :class:`EdgeRemovalExplainer` — counterfactual explanations for
  recommendation bias via interaction (edge) removals on a random-walk
  recommender (Zafeiriou [84] over RecWalk [85]): which past interactions, if
  removed, most change a user's/item group's estimated scores and exposure.
* :class:`CFairERExplainer` — attribute-level counterfactual explanations for
  exposure unfairness (Wang et al. [86]): a minimal set of item attributes
  whose neutralization most improves group exposure fairness.  The original
  uses off-policy RL over a heterogeneous information network; here the same
  search space is explored with a greedy forward selection (see DESIGN.md
  substitution table).
* :class:`CEFExplainer` — explainable fairness (Ge et al. [87]): learn the
  minimal perturbation of input (user–feature / item–feature) relevance that
  moves the recommendations to a target fairness level, and rank features by
  an explainability score based on the fairness–utility trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..recsys.interactions import InteractionMatrix
from ..recsys.metrics import exposure_disparity, item_group_exposure, ndcg_at_k
from ..recsys.models import BaseRecommender, RecWalkRecommender
from ..utils import check_random_state, safe_divide

__all__ = [
    "EdgeRemovalExplanation",
    "EdgeRemovalExplainer",
    "CFairERResult",
    "CFairERExplainer",
    "CEFResult",
    "CEFExplainer",
]


# --------------------------------------------------------------------------
# Edge-removal counterfactuals on RecWalk [84]
# --------------------------------------------------------------------------
@dataclass
class EdgeRemovalExplanation:
    """Effect of removing one user–item interaction on scores / exposure."""

    user: int
    item: int
    score_change: float
    exposure_change: float

    def describe(self) -> str:
        """Human-readable one-line summary of the removed edges."""
        return (
            f"remove (user={self.user}, item={self.item}): "
            f"Δscore={self.score_change:+.4f}, Δexposure_disparity={self.exposure_change:+.4f}"
        )


@ExplainerRegistry.register("edge_removal", capabilities=("fairness-explainer", "recommendation"),
                             modality="recsys", model_requirements=("recommend_all",),
                             resource_requirements=("recommender",))
class EdgeRemovalExplainer:
    """Counterfactual edge removals explaining recommendation bias.

    For a target user (or the whole protected item group), every candidate
    interaction edge is removed in turn, the random-walk recommender is
    re-fitted, and the change in the target quantity (item score or
    group exposure disparity) is recorded.  The edges with the largest effect
    constitute the explanation.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="both",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, recommender: RecWalkRecommender, *, k: int = 10,
                 max_edges: int = 40, random_state=None) -> None:
        self.recommender = recommender
        self.k = k
        self.max_edges = max_edges
        self.random_state = random_state

    def _candidate_edges(self, interactions: InteractionMatrix) -> list[tuple[int, int]]:
        edges = interactions.to_bipartite_edges()
        rng = check_random_state(self.random_state)
        if len(edges) > self.max_edges:
            idx = rng.choice(len(edges), size=self.max_edges, replace=False)
            edges = [edges[i] for i in idx]
        return edges

    def explain_item_score(self, user: int, item: int) -> list[EdgeRemovalExplanation]:
        """Rank the user's own interactions by their influence on the score of ``item``."""
        interactions = self.recommender.interactions_
        base_score = float(self.recommender.score(user)[item])
        explanations = []
        user_items = np.flatnonzero(interactions.matrix[user] > 0)
        for removed_item in user_items:
            refitted = self.recommender.refit_without(user, int(removed_item))
            new_score = float(refitted.score(user)[item])
            explanations.append(
                EdgeRemovalExplanation(
                    user=user,
                    item=int(removed_item),
                    score_change=new_score - base_score,
                    exposure_change=0.0,
                )
            )
        explanations.sort(key=lambda e: e.score_change)
        return explanations

    def explain_group_exposure(self, *, protected_value=1) -> list[EdgeRemovalExplanation]:
        """Rank interactions by how much their removal reduces exposure disparity."""
        interactions = self.recommender.interactions_
        base_recs = self.recommender.recommend_all(self.k)
        base_disparity = exposure_disparity(
            base_recs, interactions.item_groups, protected_value=protected_value
        )
        explanations = []
        for user, item in self._candidate_edges(interactions):
            refitted = self.recommender.refit_without(user, item)
            new_recs = refitted.recommend_all(self.k)
            new_disparity = exposure_disparity(
                new_recs, interactions.item_groups, protected_value=protected_value
            )
            explanations.append(
                EdgeRemovalExplanation(
                    user=user,
                    item=item,
                    score_change=0.0,
                    exposure_change=new_disparity - base_disparity,
                )
            )
        explanations.sort(key=lambda e: e.exposure_change)
        return explanations


# --------------------------------------------------------------------------
# CFairER: attribute-level counterfactual explanations [86]
# --------------------------------------------------------------------------
@dataclass
class CFairERResult:
    """Minimal attribute set improving exposure fairness, with the achieved metrics."""

    selected_attributes: list[int]
    attribute_names: list[str]
    base_disparity: float
    final_disparity: float
    history: list[dict] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Disparity removed by the explanation (base minus final)."""
        return self.base_disparity - self.final_disparity

    def describe(self) -> list[str]:
        """Names of the attributes selected by the explanation."""
        return [self.attribute_names[a] for a in self.selected_attributes]


@ExplainerRegistry.register("cfairer", capabilities=("fairness-explainer", "recommendation"),
                             modality="recsys", model_requirements=("recommend_all",),
                             resource_requirements=("recommender",))
class CFairERExplainer:
    """Greedy attribute-level counterfactual explanation of exposure unfairness.

    Item attributes (a binary item-attribute matrix, the HIN's attribute side)
    are candidate explanation units.  Neutralizing an attribute removes its
    contribution from the item scores; attributes are greedily added to the
    explanation while the exposure disparity of the top-k recommendations
    keeps improving.  Attentive action pruning is approximated by restricting
    candidates to attributes correlated with the protected item group.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(
        self,
        recommender: BaseRecommender,
        item_attributes: np.ndarray,
        *,
        attribute_names: list[str] | None = None,
        k: int = 10,
        max_attributes: int = 3,
        attribute_effect: float = 0.5,
        prune_correlation: float = 0.05,
    ) -> None:
        self.recommender = recommender
        self.item_attributes = np.asarray(item_attributes, dtype=float)
        self.attribute_names = attribute_names or [
            f"attr_{j}" for j in range(self.item_attributes.shape[1])
        ]
        self.k = k
        self.max_attributes = max_attributes
        self.attribute_effect = attribute_effect
        self.prune_correlation = prune_correlation

    def _scores_with_neutralized(self, neutralized: list[int]) -> np.ndarray:
        scores = self.recommender.score_matrix().copy()
        if neutralized:
            # Remove the score boost carried by the neutralized attributes.
            penalty = self.item_attributes[:, neutralized].sum(axis=1)
            scores = scores - self.attribute_effect * penalty[None, :] * scores.std()
        return scores

    def _disparity_of_scores(self, scores: np.ndarray, item_groups, protected_value) -> float:
        seen = self.recommender.interactions_.matrix > 0
        masked = np.where(seen, -np.inf, scores)
        recs = np.argsort(-masked, axis=1)[:, : self.k]
        return exposure_disparity(recs, item_groups, protected_value=protected_value)

    def _pruned_candidates(self, item_groups, protected_value) -> list[int]:
        protected = (np.asarray(item_groups) == protected_value).astype(float)
        candidates = []
        for j in range(self.item_attributes.shape[1]):
            attribute = self.item_attributes[:, j]
            if attribute.std() == 0 or protected.std() == 0:
                continue
            correlation = abs(float(np.corrcoef(attribute, protected)[0, 1]))
            if correlation >= self.prune_correlation:
                candidates.append(j)
        return candidates or list(range(self.item_attributes.shape[1]))

    def explain(self, *, protected_value=1) -> CFairERResult:
        """Greedily select the minimal attribute set whose neutralization improves fairness."""
        item_groups = self.recommender.interactions_.item_groups
        base_scores = self._scores_with_neutralized([])
        base_disparity = self._disparity_of_scores(base_scores, item_groups, protected_value)

        selected: list[int] = []
        history = [{"selected": [], "disparity": base_disparity}]
        current = base_disparity
        candidates = self._pruned_candidates(item_groups, protected_value)
        while len(selected) < self.max_attributes:
            best_attribute, best_disparity = None, current
            for j in candidates:
                if j in selected:
                    continue
                disparity = self._disparity_of_scores(
                    self._scores_with_neutralized(selected + [j]), item_groups, protected_value
                )
                if disparity < best_disparity - 1e-12:
                    best_attribute, best_disparity = j, disparity
            if best_attribute is None:
                break
            selected.append(best_attribute)
            current = best_disparity
            history.append({"selected": list(selected), "disparity": current})

        return CFairERResult(
            selected_attributes=selected,
            attribute_names=self.attribute_names,
            base_disparity=base_disparity,
            final_disparity=current,
            history=history,
        )


# --------------------------------------------------------------------------
# CEF: explainable fairness via feature perturbation [87]
# --------------------------------------------------------------------------
@dataclass
class CEFResult:
    """Per-feature explainability scores for exposure unfairness."""

    feature_names: list[str]
    fairness_gain: np.ndarray
    utility_loss: np.ndarray
    explainability_score: np.ndarray
    base_disparity: float
    base_ndcg: float

    def ranked(self) -> list[tuple[str, float]]:
        """Explanations sorted by effect, strongest first."""
        order = np.argsort(-self.explainability_score)
        return [(self.feature_names[j], float(self.explainability_score[j])) for j in order]


@ExplainerRegistry.register("cef", capabilities=("fairness-explainer", "recommendation"),
                             modality="recsys", model_requirements=("recommend_all",),
                             resource_requirements=("recommender",))
class CEFExplainer:
    """Explainable fairness in recommendation via minimal feature perturbations.

    Each item feature is perturbed (its contribution to the scores is damped),
    the change in exposure disparity (fairness gain) and in recommendation
    quality (utility loss, NDCG against held-out interactions) is measured,
    and features are ranked by the explainability score
    ``fairness_gain - beta * utility_loss``.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="single",
    )

    def __init__(
        self,
        recommender: BaseRecommender,
        item_features: np.ndarray,
        holdout: np.ndarray,
        *,
        feature_names: list[str] | None = None,
        k: int = 10,
        perturbation: float = 0.5,
        beta: float = 0.5,
    ) -> None:
        self.recommender = recommender
        self.item_features = np.asarray(item_features, dtype=float)
        self.holdout = np.asarray(holdout, dtype=float)
        self.feature_names = feature_names or [
            f"feature_{j}" for j in range(self.item_features.shape[1])
        ]
        self.k = k
        self.perturbation = perturbation
        self.beta = beta

    def _topk_from_scores(self, scores: np.ndarray) -> np.ndarray:
        seen = self.recommender.interactions_.matrix > 0
        masked = np.where(seen, -np.inf, scores)
        return np.argsort(-masked, axis=1)[:, : self.k]

    def explain(self, *, protected_value=1) -> CEFResult:
        """Score every item feature by its fairness-utility trade-off."""
        item_groups = self.recommender.interactions_.item_groups
        base_scores = self.recommender.score_matrix()
        base_recs = self._topk_from_scores(base_scores)
        base_disparity = exposure_disparity(base_recs, item_groups,
                                            protected_value=protected_value)
        base_ndcg = ndcg_at_k(base_recs, self.holdout)

        n_features = self.item_features.shape[1]
        fairness_gain = np.zeros(n_features)
        utility_loss = np.zeros(n_features)
        scale = base_scores.std() or 1.0
        for j in range(n_features):
            feature = self.item_features[:, j]
            if feature.std() > 0:
                centered = (feature - feature.mean()) / feature.std()
            else:
                centered = np.zeros_like(feature)
            perturbed_scores = base_scores - self.perturbation * scale * centered[None, :]
            recs = self._topk_from_scores(perturbed_scores)
            disparity = exposure_disparity(recs, item_groups, protected_value=protected_value)
            ndcg = ndcg_at_k(recs, self.holdout)
            fairness_gain[j] = base_disparity - disparity
            utility_loss[j] = base_ndcg - ndcg

        explainability = fairness_gain - self.beta * utility_loss
        return CEFResult(
            feature_names=list(self.feature_names),
            fairness_gain=fairness_gain,
            utility_loss=utility_loss,
            explainability_score=explainability,
            base_disparity=base_disparity,
            base_ndcg=base_ndcg,
        )
