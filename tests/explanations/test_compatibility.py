"""Tests for the registry's structured compatibility checks."""

import numpy as np
import pytest

import fairexp.core  # noqa: F401  (registers every explainer)
from fairexp.datasets import make_loan_dataset
from fairexp.explanations import ExplainerRegistry
from fairexp.explanations.base import CompatibilityCheck
from fairexp.graphs import make_biased_sbm
from fairexp.models import LogisticRegression, RandomForestClassifier


@pytest.fixture(scope="module")
def loan():
    dataset = make_loan_dataset(300, random_state=0)
    model = LogisticRegression(n_iter=300, random_state=0).fit(dataset.X, dataset.y)
    return dataset, model


class TestCompatibilityCheck:
    def test_truthiness(self):
        assert CompatibilityCheck(())
        assert not CompatibilityCheck(("model lacks predict",))

    def test_gradient_entry_requires_gradient_input(self, loan):
        dataset, model = loan
        entry = ExplainerRegistry.entry("gradient")
        assert entry.model_requirements == ("predict", "gradient_input")
        assert entry.is_compatible(model, dataset)

        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(
            dataset.X[:100], dataset.y[:100]
        )
        check = entry.is_compatible(forest, dataset)
        assert not check
        assert any("gradient_input" in reason for reason in check.reasons)

    def test_modality_mismatch_is_reported(self, loan):
        dataset, model = loan
        graph = make_biased_sbm(30, random_state=0)
        entry = ExplainerRegistry.entry("burden")
        assert entry.is_compatible(model, dataset)
        check = entry.is_compatible(model, graph)
        assert not check
        assert any("graph" in reason for reason in check.reasons)

    def test_graph_explainers_reject_tabular_data(self, loan):
        dataset, _ = loan
        entry = ExplainerRegistry.entry("structural_bias")
        assert entry.modality == "graph"
        assert not entry.is_compatible(dataset=dataset)
        assert entry.is_compatible(dataset=make_biased_sbm(30, random_state=0))

    def test_none_arguments_skip_their_half(self):
        entry = ExplainerRegistry.entry("gradient")
        assert entry.is_compatible()  # nothing to check -> compatible


class TestRegistryCompatibleQuery:
    def test_auto_selects_all_generators_for_gradient_model(self, loan):
        dataset, model = loan
        names = {e.name for e in ExplainerRegistry.compatible(
            capability="counterfactual-generator", model=model, dataset=dataset
        )}
        assert {"random_search", "growing_spheres", "gradient"} <= names

    def test_excludes_gradient_generator_for_forest(self, loan):
        dataset, _ = loan
        forest = RandomForestClassifier(n_estimators=3, random_state=0).fit(
            dataset.X[:100], dataset.y[:100]
        )
        names = {e.name for e in ExplainerRegistry.compatible(
            capability="counterfactual-generator", model=forest, dataset=dataset
        )}
        assert "gradient" not in names
        assert {"random_search", "growing_spheres"} <= names

    def test_modality_partitions_fairness_explainers(self, loan):
        dataset, _ = loan
        tabular = {e.name for e in ExplainerRegistry.compatible(
            capability="fairness-explainer", dataset=dataset
        )}
        graph = {e.name for e in ExplainerRegistry.compatible(
            capability="fairness-explainer", dataset=make_biased_sbm(30, random_state=0)
        )}
        assert "burden" in tabular and "burden" not in graph
        assert "structural_bias" in graph and "structural_bias" not in tabular
        assert "dexer" not in tabular and "dexer" not in graph


class TestDataRequirements:
    def test_scm_requirement_gates_causal_explainers(self, loan):
        from fairexp.datasets import make_scm_loan_dataset

        dataset, model = loan  # plain loan data: no SCM attached
        entry = ExplainerRegistry.entry("causal_recourse")
        assert entry.data_requirements == ("scm",)
        check = entry.is_compatible(model, dataset)
        assert not check
        assert any("structural causal model" in reason for reason in check.reasons)

        scm_dataset, _ = make_scm_loan_dataset(200, random_state=0)
        assert scm_dataset.scm is not None
        assert entry.is_compatible(model, scm_dataset)

    def test_scm_travels_through_split_and_subset(self):
        from fairexp.datasets import make_scm_loan_dataset

        scm_dataset, scm = make_scm_loan_dataset(200, random_state=0)
        train, test = scm_dataset.split(test_size=0.3, random_state=1)
        assert train.scm is scm and test.scm is scm
        assert test.subset(np.arange(10)).scm is scm

    def test_labels_requirement(self, loan):
        dataset, model = loan
        entry = ExplainerRegistry.entry("nawb")
        assert entry.data_requirements == ("labels",)
        assert entry.is_compatible(model, dataset)

        class Unlabeled:
            modality = "tabular"
            y = None

        check = entry.is_compatible(model, Unlabeled())
        assert not check
        assert any("labels" in reason for reason in check.reasons)

    def test_feature_specs_requirement(self, loan):
        dataset, model = loan
        entry = ExplainerRegistry.entry("growing_spheres")
        assert entry.data_requirements == ("feature-specs",)
        assert entry.is_compatible(model, dataset)

        class BareMatrix:
            modality = "tabular"
            features = []

        check = entry.is_compatible(model, BareMatrix())
        assert not check
        assert any("feature specs" in reason for reason in check.reasons)

    def test_compatible_query_auto_selects_causal_explainers_for_scm_data(
            self, loan):
        from fairexp.datasets import make_scm_loan_dataset

        dataset, model = loan
        scm_dataset, _ = make_scm_loan_dataset(200, random_state=0)
        with_scm = {e.name for e in ExplainerRegistry.compatible(
            capability="causal", model=model, dataset=scm_dataset
        )}
        without_scm = {e.name for e in ExplainerRegistry.compatible(
            capability="causal", model=model, dataset=dataset
        )}
        assert {"causal_recourse", "causal_paths",
                "causal_recourse_fairness"} <= with_scm
        assert without_scm & {"causal_recourse", "causal_paths"} == set()

    def test_unknown_data_requirement_rejected_at_registration(self):
        with pytest.raises(ValueError):
            ExplainerRegistry.register("bogus_entry",
                                       data_requirements=("telemetry",))
