"""Dexer: detecting and explaining biased representation in ranking (Moskovitch et al. [88]).

Dexer (a) detects groups that are under-represented in the top-k of a ranking
relative to their share of the candidate pool, and (b) explains the detection
with Shapley values: the attributes whose values most separate the detected
group from the top-k tuples, computed by attributing the ranking score (or
top-k membership) to attributes and comparing the distribution of those
attributions between the group and the top-k.  The explanation is delivered
as per-attribute Shapley summaries plus the value distributions to visualize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.shapley import sampled_shapley_values
from ..fairness.ranking_metrics import (
    ranking_binomial_pvalue,
    representation_difference,
    top_k_representation,
)
from ..ranking.rankers import RankedCandidates, ScoreRanker
from ..utils import check_random_state

__all__ = ["GroupDetection", "AttributeEvidence", "DexerResult", "DexerExplainer"]


@dataclass
class GroupDetection:
    """A detected under-represented group in the top-k."""

    group_value: int
    pool_share: float
    topk_share: float
    representation_gap: float
    p_value: float

    @property
    def is_significant(self) -> bool:
        """True when the under-representation is significant (p < 0.05)."""
        return self.p_value < 0.05 and self.representation_gap < 0


@dataclass
class AttributeEvidence:
    """Per-attribute explanation of why a group is under-ranked."""

    attribute: str
    mean_shapley_group: float
    mean_shapley_topk: float
    group_values: np.ndarray = field(repr=False)
    topk_values: np.ndarray = field(repr=False)

    @property
    def shapley_gap(self) -> float:
        """Mean attribution of the top-k minus mean attribution of the detected group.

        Large positive values identify attributes that push top-k tuples up
        and the detected group down.
        """
        return self.mean_shapley_topk - self.mean_shapley_group

    def distributions(self) -> dict[str, np.ndarray]:
        """Raw attribute-value distributions for visualization (group vs top-k)."""
        return {"group": self.group_values, "topk": self.topk_values}


@dataclass
class DexerResult:
    """Detection plus ranked attribute evidence."""

    detection: GroupDetection
    evidence: list[AttributeEvidence]

    def top_attributes(self, k: int = 2) -> list[tuple[str, float]]:
        """The ``k`` attributes with the strongest disparity evidence."""
        ranked = sorted(self.evidence, key=lambda e: -e.shapley_gap)
        return [(e.attribute, e.shapley_gap) for e in ranked[:k]]


@ExplainerRegistry.register("dexer", capabilities=("fairness-explainer", "ranking"),
                             modality="ranking", model_requirements=("rank",))
class DexerExplainer:
    """Detect and explain biased representation of a group in a top-k ranking.

    Parameters
    ----------
    ranker:
        The score-based ranker whose output is audited.
    k:
        Size of the ranking prefix under audit.
    n_permutations:
        Monte-Carlo budget for the per-tuple Shapley attributions of the score.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="feature",
        multiplicity="single",
    )

    def __init__(self, ranker: ScoreRanker, *, k: int = 20, n_permutations: int = 60,
                 random_state=None) -> None:
        self.ranker = ranker
        self.k = k
        self.n_permutations = n_permutations
        self.random_state = random_state

    def detect(self, candidates: RankedCandidates, *, protected_value=1) -> GroupDetection:
        """Test whether the protected group is under-represented in the top-k."""
        ranked = self.ranker.rank(candidates)
        groups_in_order = ranked.ranked_groups()
        pool_share = float(np.mean(candidates.groups == protected_value))
        topk_share = top_k_representation(groups_in_order, self.k, protected_value=protected_value)
        gap = representation_difference(groups_in_order, self.k, protected_value=protected_value)
        p_value = ranking_binomial_pvalue(groups_in_order, self.k, protected_value=protected_value)
        return GroupDetection(
            group_value=int(protected_value),
            pool_share=pool_share,
            topk_share=topk_share,
            representation_gap=gap,
            p_value=p_value,
        )

    def _score_attributions(self, candidates: RankedCandidates, rows: np.ndarray) -> np.ndarray:
        """Shapley attributions of the ranking score for the given rows."""
        rng = check_random_state(self.random_state)

        def predict(X: np.ndarray) -> np.ndarray:
            return self.ranker.score(X)

        attributions = []
        for row in rows:
            attribution = sampled_shapley_values(
                predict,
                row,
                candidates.X,
                n_permutations=self.n_permutations,
                feature_names=candidates.feature_names,
                random_state=rng,
            )
            attributions.append(attribution.values)
        return np.vstack(attributions) if attributions else np.zeros((0, candidates.X.shape[1]))

    def explain(
        self, candidates: RankedCandidates, *, protected_value=1, max_tuples: int = 20
    ) -> DexerResult:
        """Detect under-representation and attribute it to candidate attributes."""
        detection = self.detect(candidates, protected_value=protected_value)
        ranked = self.ranker.rank(candidates)
        rng = check_random_state(self.random_state)

        topk_idx = ranked.top_k(self.k)
        group_idx = np.flatnonzero(candidates.groups == protected_value)
        group_idx = np.setdiff1d(group_idx, topk_idx)
        if group_idx.shape[0] > max_tuples:
            group_idx = rng.choice(group_idx, size=max_tuples, replace=False)
        topk_sample = topk_idx if topk_idx.shape[0] <= max_tuples else rng.choice(
            topk_idx, size=max_tuples, replace=False
        )

        group_attributions = self._score_attributions(candidates, candidates.X[group_idx])
        topk_attributions = self._score_attributions(candidates, candidates.X[topk_sample])

        evidence = []
        for j, name in enumerate(candidates.feature_names):
            evidence.append(
                AttributeEvidence(
                    attribute=name,
                    mean_shapley_group=(
                        float(group_attributions[:, j].mean()) if group_attributions.size else 0.0
                    ),
                    mean_shapley_topk=(
                        float(topk_attributions[:, j].mean()) if topk_attributions.size else 0.0
                    ),
                    group_values=candidates.X[group_idx, j],
                    topk_values=candidates.X[topk_sample, j],
                )
            )
        evidence.sort(key=lambda e: -e.shapley_gap)
        return DexerResult(detection=detection, evidence=evidence)
