"""Pre-processing mitigation: modify the training data before model fitting.

Implements the three classic pre-processing strategies referenced by the
paper's fairness taxonomy:

* **Reweighing** (Kamiran & Calders) — assign each (group, label) cell a
  weight so that group and label become statistically independent.
* **Massaging / relabeling** — flip the labels of the most "promotable"
  protected individuals and the most "demotable" reference individuals.
* **Disparate impact repair** (Feldman et al.) — move each group's feature
  distribution towards the pooled median distribution.
"""

from __future__ import annotations

import numpy as np

from ...datasets.schema import Dataset
from ...exceptions import ValidationError
from ...models.base import BaseClassifier
from ..groups import group_masks

__all__ = ["reweighing_weights", "massage_labels", "disparate_impact_repair"]


def reweighing_weights(y, sensitive, *, protected_value=1) -> np.ndarray:
    """Return per-sample weights that decorrelate group membership and label.

    The weight for cell ``(group=g, label=l)`` is
    ``P(group=g) * P(label=l) / P(group=g, label=l)``.
    """
    y = np.asarray(y, dtype=int)
    masks = group_masks(sensitive, protected_value=protected_value)
    n = y.shape[0]
    weights = np.ones(n, dtype=float)
    for group_mask in (masks.protected, masks.reference):
        p_group = group_mask.mean()
        for label in (0, 1):
            label_mask = y == label
            p_label = label_mask.mean()
            cell = group_mask & label_mask
            p_cell = cell.mean()
            if p_cell == 0:
                continue
            weights[cell] = (p_group * p_label) / p_cell
    return weights


def massage_labels(
    dataset: Dataset,
    ranker: BaseClassifier,
    *,
    protected_value=1,
) -> Dataset:
    """Relabel borderline samples to equalize base rates (Kamiran & Calders "massaging").

    A ranker (any probabilistic classifier) is trained on the original data;
    the protected negatives with the highest favourable-probability are
    promoted to 1 and an equal number of reference positives with the lowest
    probability are demoted to 0, until base rates match.
    """
    masks = group_masks(dataset.sensitive_values, protected_value=protected_value)
    y = dataset.y.copy()

    ranker = ranker.clone()
    ranker.fit(dataset.X, y)
    scores = ranker.predict_proba(dataset.X)[:, 1]

    protected_rate = y[masks.protected].mean()
    reference_rate = y[masks.reference].mean()
    if protected_rate >= reference_rate:
        return dataset.with_values(y=y)

    # Number of promotions needed so the two base rates meet in the middle.
    n_protected = masks.n_protected
    n_reference = masks.n_reference
    target = (y[masks.protected].sum() + y[masks.reference].sum()) / (n_protected + n_reference)
    n_promote = int(round(target * n_protected - y[masks.protected].sum()))
    n_demote = int(round(y[masks.reference].sum() - target * n_reference))
    n_changes = max(0, min(n_promote, n_demote))
    if n_changes == 0:
        return dataset.with_values(y=y)

    promote_candidates = np.flatnonzero(masks.protected & (y == 0))
    demote_candidates = np.flatnonzero(masks.reference & (y == 1))
    promote_order = promote_candidates[np.argsort(-scores[promote_candidates])]
    demote_order = demote_candidates[np.argsort(scores[demote_candidates])]
    y[promote_order[:n_changes]] = 1
    y[demote_order[:n_changes]] = 0
    return dataset.with_values(y=y)


def disparate_impact_repair(
    dataset: Dataset,
    *,
    repair_level: float = 1.0,
    columns: list[str] | None = None,
    protected_value=1,
) -> Dataset:
    """Move per-group feature quantiles towards the pooled distribution.

    ``repair_level=1`` makes the repaired feature distribution identical
    across groups (full repair); ``0`` returns the data unchanged.  The
    sensitive column itself and binary columns are left untouched unless
    explicitly listed.
    """
    if not 0.0 <= repair_level <= 1.0:
        raise ValidationError("repair_level must be in [0, 1]")
    X = dataset.X.copy()
    masks = group_masks(dataset.sensitive_values, protected_value=protected_value)
    if columns is None:
        columns = [
            spec.name
            for spec in dataset.features
            if spec.kind == "numeric" and spec.name != dataset.sensitive
        ]
    for name in columns:
        j = dataset.index_of(name)
        pooled_sorted = np.sort(X[:, j])
        for mask in (masks.protected, masks.reference):
            values = X[mask, j]
            if values.size == 0:
                continue
            ranks = np.argsort(np.argsort(values))
            quantiles = (ranks + 0.5) / values.size
            pooled_values = np.quantile(pooled_sorted, quantiles)
            X[mask, j] = (1 - repair_level) * values + repair_level * pooled_values
    return dataset.with_values(X=X)
