"""Tests for the ``python -m fairexp store`` operational CLI."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from fairexp.cli import main
from fairexp.explanations import Counterfactual, CounterfactualStore

SRC_DIR = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")


def _populate(directory, fingerprints=("a", "b")):
    store = CounterfactualStore(directory)
    counterfactual = Counterfactual(
        original=np.zeros(3), counterfactual=np.ones(3),
        original_prediction=0, counterfactual_prediction=1,
        changed_features=(0, 1, 2), distance=3.0,
    )
    for letter in fingerprints:
        store.save(letter * 64, {0: counterfactual, 1: None}, n_features=3)
    return store


class TestInspect:
    def test_lists_fingerprints_ages_and_sizes(self, tmp_path, capsys):
        _populate(tmp_path)
        assert main(["store", "inspect", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "a" * 16 in out and "b" * 16 in out
        assert "FINGERPRINT" in out and "AGE" in out and "BYTES" in out

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        _populate(tmp_path)
        assert main(["store", "inspect", "--dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == str(tmp_path)
        assert {entry["fingerprint"] for entry in payload["entries"]} \
            == {"a" * 64, "b" * 64}
        for entry in payload["entries"]:
            assert entry["bytes"] > 0
            assert entry["age_seconds"] >= 0
            assert entry["n_rows"] == 2

    def test_empty_store(self, tmp_path, capsys):
        assert main(["store", "inspect", "--dir", str(tmp_path)]) == 0
        assert "empty store" in capsys.readouterr().out

    def test_dir_falls_back_to_env(self, tmp_path, capsys, monkeypatch):
        _populate(tmp_path)
        monkeypatch.setenv("FAIREXP_STORE_DIR", str(tmp_path))
        assert main(["store", "inspect"]) == 0
        assert "2 entries" in capsys.readouterr().out

    def test_missing_dir_is_an_error(self, capsys, monkeypatch):
        monkeypatch.delenv("FAIREXP_STORE_DIR", raising=False)
        with pytest.raises(SystemExit):
            main(["store", "inspect"])

    def test_nonexistent_dir_is_an_error_not_an_empty_store(self, tmp_path):
        """A typo'd --dir must error, not be silently created and reported
        as an empty store."""
        typo = tmp_path / "stroe"
        with pytest.raises(SystemExit, match="does not exist"):
            main(["store", "inspect", "--dir", str(typo)])
        assert not typo.exists()  # read-only command left no side effects


class TestEvictAndClear:
    def test_evict_by_fingerprint_prefix(self, tmp_path, capsys):
        store = _populate(tmp_path)
        assert main(["store", "evict", "--dir", str(tmp_path),
                     "--fingerprint", "a"]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert store.entries() == ["b" * 64]

    def test_evict_to_bounds(self, tmp_path, capsys):
        store = _populate(tmp_path, fingerprints=("a", "b", "c"))
        assert main(["store", "evict", "--dir", str(tmp_path),
                     "--max-entries", "1"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert len(store.entries()) == 1

    def test_evict_without_criteria_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "evict", "--dir", str(tmp_path)])

    def test_evict_ambiguous_prefix_is_an_error(self, tmp_path):
        store = _populate(tmp_path, fingerprints=())
        counterfactual = Counterfactual(
            original=np.zeros(3), counterfactual=np.ones(3),
            original_prediction=0, counterfactual_prediction=1,
            changed_features=(0, 1, 2), distance=3.0,
        )
        store.save("ab" + "0" * 62, {0: counterfactual}, n_features=3)
        store.save("ac" + "0" * 62, {0: counterfactual}, n_features=3)
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["store", "evict", "--dir", str(tmp_path), "--fingerprint", "a"])
        assert len(store.entries()) == 2

    def test_clear_removes_everything(self, tmp_path, capsys):
        store = _populate(tmp_path)
        assert main(["store", "clear", "--dir", str(tmp_path)]) == 0
        assert "cleared 2 entries" in capsys.readouterr().out
        assert store.entries() == []


class TestModuleEntryPoint:
    def test_python_dash_m_fairexp(self, tmp_path):
        """The documented invocation shape works end to end."""
        _populate(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-m", "fairexp", "store", "inspect",
             "--dir", str(tmp_path), "--json"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert len(json.loads(completed.stdout)["entries"]) == 2
