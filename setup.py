"""Setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable wheels cannot be built.  This file enables the legacy
``setup.py develop`` editable-install path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
