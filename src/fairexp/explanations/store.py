"""Cross-process persistent counterfactual result store.

An :class:`~fairexp.explanations.session.AuditSession` already shares each
population's counterfactual matrix across every audit *inside* one process.
This module extends that sharing across process boundaries: CI runs,
dashboard refreshes and example scripts auditing the same frozen model over
the same population reuse the matrices a previous process already paid for.

The unit of persistence is one **population entry**: the aligned
counterfactual results (including rows remembered as infeasible) for one
population matrix under one model and one search configuration.  Entries are
keyed by a :func:`population_fingerprint` — a SHA-256 digest folding together

* the **dataset hash** (shape + bytes of the population matrix),
* the **model signature** (class plus every public attribute, fitted arrays
  included, so an in-place refit busts the key) and the **predict
  dispatch** (a custom callable backend — ONNX export, remote scorer — is
  part of the key: its decision boundary, not the bare model's, produced
  the results),
* the **engine config** (generator class, search parameters — the search
  schedule included — actionability constraints, background data, seed —
  via :func:`~fairexp.explanations.engine.generator_config`),
* the **fingerprint and fairexp release versions**, so semantic key changes
  and search-kernel changes retire old entries instead of serving them.

On disk each entry is a compressed ``.npz`` payload (stacked counterfactual
matrices and per-row metadata) plus a JSON manifest carrying the format
version and the payload's checksum; payload-encoding evolution is read-
compatible (version-1 uncompressed entries still load) rather than
key-busting.  Writes are corruption-safe: payloads are
content-named and published with an atomic ``os.replace`` before the
manifest that references them, so concurrent writers of the same fingerprint
cannot interleave — a reader either sees a complete earlier entry or a
complete later one, and any torn or truncated state fails checksum
validation and is treated as a miss (recompute, then overwrite).  The store
directory is bounded: least-recently-used entries are evicted beyond
``max_entries`` / ``max_bytes``, and orphaned payloads are swept.

Generators seeded with a shared :class:`numpy.random.Generator` instance —
or not seeded at all (``random_state=None`` draws fresh OS entropy every
run) — have no reproducible fingerprint; :func:`population_fingerprint`
returns ``None`` for them and the session quietly skips the store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
import sys
import time
import re
from pathlib import Path

import numpy as np

from .backends import CallablePredictBackend, NumpyPredictBackend
from .base import Counterfactual
from .engine import (
    BatchModelAdapter,
    effective_backend,
    generator_config,
    generator_config_is_faithful,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "CounterfactualStore",
    "model_signature",
    "population_fingerprint",
]

#: Format version written into every new manifest.  Version 2 compresses
#: payloads (``np.savez_compressed``); version 1 wrote them uncompressed.
STORE_FORMAT_VERSION = 2

#: Manifest versions this build can still read.  ``np.load`` handles zipped
#: and plain ``.npz`` members transparently, so version-1 (uncompressed)
#: entries remain readable at the format layer; anything newer than
#: :data:`STORE_FORMAT_VERSION` is treated as corruption (recompute).
#: Note the honest scope of this guarantee: *addressability* of old entries
#: is governed by the fingerprint, which folds the package's source digest —
#: so entries written by a different build are usually retired by key
#: rotation before read-compat ever matters.  The readable set exists so the
#: payload encoding itself never has to be the thing that invalidates data.
_READABLE_FORMAT_VERSIONS = frozenset({1, STORE_FORMAT_VERSION})

#: Version folded into population fingerprints.  Separate from
#: :data:`STORE_FORMAT_VERSION` on purpose: a payload-encoding-only change
#: (v1 uncompressed → v2 compressed) keeps addressing the same entries —
#: that is what makes the read-compat set above meaningful — whereas a
#: *semantic* change to what a fingerprint covers must bump this one.
_FINGERPRINT_VERSION = 1

#: What an entry's file stem looks like: a (possibly truncated) hex digest.
#: Anything else in the directory — a sweep's ``SWEEP_JOURNAL.json``, editor
#: droppings — is a foreign file the store must leave alone.
_FINGERPRINT_STEM = re.compile(r"[0-9a-f]{16,64}")

#: Seconds a payload may sit unreferenced by any manifest before the orphan
#: sweep removes it — long enough for a concurrent writer to publish the
#: manifest that will reference it.
_ORPHAN_GRACE_SECONDS = 60.0


# --------------------------------------------------------------------------
# Fingerprinting
# --------------------------------------------------------------------------
def _hash_value(digest, value, _on_path: frozenset[int] = frozenset()) -> bool:
    """Fold ``value`` into ``digest`` deterministically.

    Returns ``False`` when the value has no reproducible byte representation
    — a live ``np.random.Generator`` stream, state without ``__dict__``, or
    a cyclic object graph (``_on_path`` tracks container/object ids on the
    current recursion path) — which poisons the whole fingerprint: callers
    skip the store rather than guess.
    """
    if isinstance(value, np.random.Generator):
        return False
    if isinstance(value, np.ndarray):
        if value.dtype.hasobject:
            # tobytes() on an object array serializes memory pointers, which
            # differ per process (never warm) and can collide after
            # reallocation (wrong warm hit) — poison instead.
            return False
        array = np.ascontiguousarray(value)
        digest.update(f"ndarray:{array.dtype}:{array.shape}:".encode())
        digest.update(array.tobytes())
        return True
    if isinstance(value, (bool, int, float, str, bytes,
                          np.bool_, np.integer, np.floating)) \
            or value is None:
        # Length-prefix framing: without it the concatenated reprs of
        # neighbouring items are ambiguous ([1, 23] vs [12, 3] would fold
        # to the same bytes) and distinct configs would share fingerprints.
        encoded = repr(value).encode()
        digest.update(f"scalar:{len(encoded)}:".encode())
        digest.update(encoded)
        return True
    if id(value) in _on_path:
        return False  # back-reference cycle: not reproducibly serializable
    _on_path = _on_path | {id(value)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        digest.update(f"dataclass:{type(value).__qualname__}:".encode())
        for field in dataclasses.fields(value):
            digest.update(f"field:{field.name}:".encode())
            if not _hash_value(digest, getattr(value, field.name), _on_path):
                return False
        return True
    if isinstance(value, dict):
        digest.update(f"dict:{len(value)}:".encode())
        for key in sorted(value, key=repr):
            encoded_key = repr(key).encode()
            digest.update(f"key:{len(encoded_key)}:".encode())
            digest.update(encoded_key)
            if not _hash_value(digest, value[key], _on_path):
                return False
        return True
    if isinstance(value, (list, tuple)):
        digest.update(f"seq:{len(value)}:".encode())
        return all(_hash_value(digest, item, _on_path) for item in value)
    if isinstance(value, (set, frozenset)):
        digest.update(f"set:{len(value)}:".encode())
        return all(_hash_value(digest, item, _on_path)
                   for item in sorted(value, key=repr))
    # Objects (e.g. nested estimators): class identity plus ALL instance
    # state — private attributes included, since from-scratch models keep
    # fitted state under leading underscores (KNN's ``_X``/``_y``, MLP's
    # normalizers) and skipping them would alias differently-fitted models.
    # Unreproducible members (locks, streams) poison the fingerprint via
    # the branches above, which is the safe direction: a skipped store,
    # never a wrong hit.  Anything without inspectable state at all has no
    # reproducible representation — poison rather than guess.
    if not hasattr(value, "__dict__"):
        return False
    digest.update(f"obj:{type(value).__qualname__}:".encode())
    return _hash_value(digest, dict(vars(value)), _on_path)


def model_signature(model) -> str | None:
    """Digest of a fitted model: class identity plus its entire instance state.

    Fitted arrays are hashed by content — public (``coef_`` and friends) and
    private (KNN's ``_X``/``_y``, MLP's normalizers) alike — so two fits on
    the same data agree and an in-place refit on different data produces a
    different signature, which is exactly what must bust a population
    fingerprint.  :class:`~fairexp.explanations.engine.BatchModelAdapter`
    wrappers are unwrapped first.  Returns ``None`` when the model carries
    state with no reproducible byte representation (locks, live random
    streams, ``__slots__``-only state invisible to ``vars()``, cyclic or
    unboundedly deep object graphs).
    """
    if isinstance(model, BatchModelAdapter):
        model = model.model
    if model is None:
        return None
    if not hasattr(model, "__dict__"):
        # A __slots__/extension model's state is invisible to vars();
        # hashing it as empty would alias differently-fitted models onto
        # one fingerprint and warm-serve wrong-model counterfactuals.
        return None
    digest = hashlib.sha256()
    digest.update(f"model:{type(model).__qualname__}:".encode())
    try:
        if not _hash_value(digest, dict(vars(model))):
            return None
    except RecursionError:
        # Deeper state than the interpreter can walk: no reproducible hash.
        return None
    return digest.hexdigest()


def _dispatch_token(model) -> bytes | None:
    """Bytes identifying the *effective predict dispatch* behind ``model``.

    The bare model's fitted state is hashed separately
    (:func:`model_signature`); this token captures which predictor turns a
    candidate matrix into labels.  A custom callable backend (ONNX export,
    remote scorer) can disagree with the bare model's own ``predict``, so
    two sessions differing only in that callable must not share store
    entries.

    The token folds in the callable's pickle (a bound method embeds its
    instance state; a module-level function pickles by reference only) AND,
    when available, its bytecode + constants — so editing a module-level
    scorer's body busts the key even though its import path is unchanged.
    Logic reached indirectly (globals, closures over mutable state) is
    beyond any static token; the folded-in fairexp version plus
    ``STORE_FORMAT_VERSION`` remain the backstop for such changes.
    ``None`` means the dispatch has no reproducible identity (unpicklable
    callables, unknown third-party backends) — skip the store.
    """
    backend = effective_backend(model)
    if backend is None or type(backend) is NumpyPredictBackend:
        return b"dispatch:model-predict"
    # Imported lazily to keep this module importable before serving.py
    # (package init order), and because only this branch needs it.
    from .serving import OnnxExportBackend, RemoteScoringBackend

    if isinstance(backend, OnnxExportBackend):
        # The exported graph carries its full predictor identity in its own
        # bytes: content-hash it instead of pickling (reproducible across
        # processes), so ONNX-backed sweeps can warm-start from the store —
        # keyed apart from in-process sweeps and from any other graph.
        return b"dispatch:onnx-graph:" + backend.graph.signature().encode()
    if isinstance(backend, RemoteScoringBackend):
        # A remote scorer's endpoint (host:port of a loopback or fleet
        # server) is ephemeral — folding it would fingerprint-miss on every
        # resume.  The graph content hash the backend routes by IS the
        # predictor identity (the server scores that exact graph), so
        # remote cells keyed on it are store-addressable across server
        # restarts and share entries with nothing else.  A graph-less
        # remote backend (bare URL, unknown server-side predictor) has no
        # reproducible identity: skip the store.
        if backend.graph_key:
            return b"dispatch:remote-graph:" + str(backend.graph_key).encode()
        return None
    if type(backend) is CallablePredictBackend:
        try:
            parts = [b"dispatch:callable:", pickle.dumps(backend.fn)]
        except Exception:
            return None
        code = getattr(backend.fn, "__code__", None)
        if code is None:  # bound methods carry code on __func__
            code = getattr(getattr(backend.fn, "__func__", None), "__code__", None)
        if code is not None:
            parts.append(_code_token(code))
        return b"".join(parts)
    return None


def _code_token(code) -> bytes:
    """Process-stable bytes for a code object: bytecode + constants.

    Two constant kinds need special care, both for the same reason — their
    default repr differs between processes, which would make the
    fingerprint miss in every fresh process and silently turn warm starts
    into permanent cold paths:

    * nested code objects (inner defs/lambdas) repr with a memory address —
      recursed into instead;
    * ``frozenset`` constants (compiled from set-membership literals)
      iterate in hash-seed-dependent order — repr'd sorted instead.
    """
    parts = [code.co_code]
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            parts.append(_code_token(const))
        elif isinstance(const, (set, frozenset)):
            parts.append(repr(sorted(const, key=repr)).encode())
        else:
            parts.append(repr(const).encode())
    return b"".join(parts)


_PACKAGE_CODE_TOKEN: str | None = None


def _package_code_token() -> str:
    """Digest of every ``.py`` file in the installed fairexp package.

    Fingerprints hash config and data, not code — so a source change to any
    search kernel (or model predict logic) must retire existing store
    entries some other way.  Between releases ``__version__`` never moves
    (a dev checkout pulls kernel changes under one version string), so the
    package's own source bytes are folded into every fingerprint instead.
    Computed once per process; unreadable sources degrade to a stable
    placeholder rather than failing the audit.
    """
    global _PACKAGE_CODE_TOKEN
    if _PACKAGE_CODE_TOKEN is None:
        import fairexp

        digest = hashlib.sha256()
        root = Path(fairexp.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            try:
                digest.update(path.read_bytes())
            except OSError:
                digest.update(b"<unreadable>")
        _PACKAGE_CODE_TOKEN = digest.hexdigest()
    return _PACKAGE_CODE_TOKEN


def population_fingerprint(generator, X) -> str | None:
    """Fingerprint of one (population, model, engine config) combination.

    This is the store key: any change to the population matrix, the fitted
    model (or the predict backend standing in for it), the generator class,
    any of its search parameters (constraints, seed, schedule, metric,
    target class, background data), or the installed fairexp version yields
    a different fingerprint — see ``docs/architecture.md`` for the
    cache-invalidation story.  Returns ``None`` when no reproducible
    fingerprint exists (unseeded shared random streams, unhashable models,
    anonymous predict callables), in which case callers must skip the store.
    """
    if not generator_config_is_faithful(generator):
        return None  # the config hash would be blind to a hidden parameter
    dispatch = _dispatch_token(generator.model)
    if dispatch is None:
        return None
    signature = model_signature(generator.model)
    if signature is None:
        bare = generator.model
        if isinstance(bare, BatchModelAdapter):
            bare = bare.model
        if bare is not None:
            return None  # a model exists but has no reproducible hash
        # Pure-callable session: the pickled callable in the dispatch token
        # carries the full predictor identity on its own.
        signature = "callable-only"
    # Imported lazily: fairexp/__init__ imports this module during package
    # init, before __version__ is bound.
    import fairexp

    digest = hashlib.sha256()
    digest.update(f"format:{_FINGERPRINT_VERSION}:".encode())
    # Results are produced by code, and fingerprints hash config + data, not
    # code — folding the release version AND the package's source digest in
    # retires every entry on upgrade or on any source change to the search
    # kernels, so pre-change matrices can never be served warm.
    digest.update(f"version:{getattr(fairexp, '__version__', '0')}:".encode())
    digest.update(f"code:{_package_code_token()}:".encode())
    # The search also runs on numpy's RNG streams and ufuncs and the
    # interpreter's bytecode semantics — an upgrade of either can change
    # results without touching fairexp sources or fitted state.
    digest.update(
        f"deps:python{sys.version_info.major}.{sys.version_info.minor}"
        f":numpy{np.__version__}:".encode()
    )
    digest.update(f"generator:{type(generator).__qualname__}:".encode())
    digest.update(f"model:{signature}:".encode())
    digest.update(dispatch)
    config = generator_config(generator)
    if "random_state" in config and config["random_state"] is None:
        # An unseeded search draws fresh OS entropy every run: persisting one
        # run's draws and replaying them warm would silently turn a
        # nondeterministic audit into a sticky one.
        return None
    try:
        if not _hash_value(digest, np.asarray(generator.background, dtype=float)):
            return None
        if not _hash_value(digest, config):
            return None
    except RecursionError:
        return None  # a custom generator param deeper than the stack allows
    X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=float)))
    digest.update(f"population:{X.shape}:".encode())
    digest.update(X.tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------
# Serialization
# --------------------------------------------------------------------------
def _pack_results(results: dict[int, Counterfactual | None], n_features: int) -> dict:
    """Stack a per-row result mapping into the arrays one ``.npz`` holds.

    Raises ``TypeError`` when some row's ``meta`` is not JSON-serializable —
    persisting it would silently return different objects on the warm path,
    so the caller skips the save instead (fidelity over persistence).
    """
    indices = np.asarray(sorted(results), dtype=np.int64)
    n = indices.size
    metas = ["{}"] * n
    packed = {
        "indices": indices,
        "has_result": np.zeros(n, dtype=bool),
        "originals": np.full((n, n_features), np.nan),
        "counterfactuals": np.full((n, n_features), np.nan),
        "original_predictions": np.zeros(n, dtype=np.int64),
        "counterfactual_predictions": np.zeros(n, dtype=np.int64),
        "distances": np.full(n, np.nan),
        "constraint_feasible": np.zeros(n, dtype=bool),
        "changed_masks": np.zeros((n, n_features), dtype=bool),
    }
    for k, index in enumerate(indices):
        result = results[int(index)]
        if result is None:  # remembered-infeasible row
            continue
        packed["has_result"][k] = True
        packed["originals"][k] = np.asarray(result.original, dtype=float)
        packed["counterfactuals"][k] = np.asarray(result.counterfactual, dtype=float)
        packed["original_predictions"][k] = int(result.original_prediction)
        packed["counterfactual_predictions"][k] = int(result.counterfactual_prediction)
        packed["distances"][k] = float(result.distance)
        packed["constraint_feasible"][k] = bool(result.feasible)
        packed["changed_masks"][k, list(result.changed_features)] = True
        encoded_meta = json.dumps(result.meta, sort_keys=True)
        if json.loads(encoded_meta) != result.meta:
            # JSON silently coerces e.g. int dict keys to strings; a warm
            # load would then return different meta than the cold path.
            raise ValueError("meta does not survive a JSON round trip")
        metas[k] = encoded_meta
    packed["metas"] = np.asarray(metas)
    return packed


def _unpack_results(payload) -> dict[int, Counterfactual | None]:
    """Rebuild the per-row result mapping from a loaded ``.npz`` payload."""
    results: dict[int, Counterfactual | None] = {}
    indices = payload["indices"]
    has_result = payload["has_result"]
    for k, index in enumerate(indices):
        if not has_result[k]:
            results[int(index)] = None
            continue
        # metas is absent from entries written before the field existed;
        # missing-key errors surface as corruption -> recompute, so only the
        # happy path is handled here.
        meta = json.loads(str(payload["metas"][k])) if "metas" in payload else {}
        results[int(index)] = Counterfactual(
            original=np.array(payload["originals"][k], dtype=float),
            counterfactual=np.array(payload["counterfactuals"][k], dtype=float),
            original_prediction=int(payload["original_predictions"][k]),
            counterfactual_prediction=int(payload["counterfactual_predictions"][k]),
            changed_features=tuple(
                int(j) for j in np.flatnonzero(payload["changed_masks"][k])
            ),
            distance=float(payload["distances"][k]),
            feasible=bool(payload["constraint_feasible"][k]),
            meta=meta,
        )
    return results


# --------------------------------------------------------------------------
# The store
# --------------------------------------------------------------------------
class CounterfactualStore:
    """Directory-backed LRU store of per-population counterfactual results.

    Parameters
    ----------
    directory:
        Where entries live.  Created on first use; safe to share between
        concurrent processes (all publishes are atomic renames).
    max_entries:
        Bound on the number of population entries kept; least-recently-used
        entries beyond it are evicted after every save.
    max_bytes:
        Bound on the directory's total payload + manifest size, enforced the
        same way.  An entry larger than the bound on its own is still kept
        (evicting everything would just thrash); the bound then holds again
        as soon as a smaller entry set returns.

    Attributes
    ----------
    hit_count, miss_count:
        Entry-level load outcomes for this process, surfaced through
        :meth:`AuditSession.stats` as the honest measure of warm starts.
    bytes_read:
        Total payload bytes this process read back from disk on validated
        entry loads — the I/O cost of warm starts, surfaced into the
        ``BENCH_*`` trajectories alongside the hit counters.
    """

    def __init__(self, directory, *, max_entries: int = 256,
                 max_bytes: int = 512 * 1024 * 1024) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self.hit_count = 0
        self.miss_count = 0
        self.bytes_read = 0

    @classmethod
    def from_env(cls, env_var: str = "FAIREXP_STORE_DIR") -> "CounterfactualStore | None":
        """Store rooted at ``$FAIREXP_STORE_DIR``, or ``None`` when unset.

        This is how the experiment runners opt in: exporting the variable
        turns every E1–E9 session warm-startable with no code change.
        """
        directory = os.environ.get(env_var, "").strip()
        return cls(directory) if directory else None

    @staticmethod
    def ensure(store) -> "CounterfactualStore | None":
        """Coerce ``store`` (a store, a path, or ``None``) to a store.

        An empty path means "no store", matching :meth:`from_env` with an
        unset variable — it must not silently become a store rooted in the
        process's working directory.
        """
        if store is None or isinstance(store, CounterfactualStore):
            return store
        if not str(store).strip():
            return None
        return CounterfactualStore(store)

    # --------------------------------------------------------------- layout
    def _manifest_path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def _payload_path(self, fingerprint: str, token: str) -> Path:
        return self.directory / f"{fingerprint}.{token}.npz"

    def _entry_manifests(self) -> list[Path]:
        """Manifests of actual entries: hex-fingerprint-named ``.json`` files.

        The store directory can host foreign bookkeeping files — a sweep's
        ``SWEEP_JOURNAL.json`` lives next to the entries it warms — and
        those must never be listed, counted, or (worst) LRU-evicted as if
        they were population entries.
        """
        return [path for path in self.directory.glob("*.json")
                if _FINGERPRINT_STEM.fullmatch(path.stem)]

    def entries(self) -> list[str]:
        """Fingerprints of every entry currently published in the directory."""
        return sorted(path.stem for path in self._entry_manifests())

    def entry_details(self) -> list[dict]:
        """Per-entry metadata for inspection: one dict per published entry.

        Each dict carries ``fingerprint``, ``n_rows``, ``n_features``,
        ``bytes`` (manifest + payload), ``age_seconds`` (since the last
        recency bump — the quantity LRU eviction orders on),
        ``updated_at`` and ``format_version``.  Entries racing a concurrent
        writer are skipped rather than reported half-read; ordering is by
        age, oldest (next-to-evict) first.  This is what the
        ``python -m fairexp store inspect`` CLI prints.
        """
        now = time.time()
        details: list[dict] = []
        for manifest_path in self._entry_manifests():
            try:
                manifest = json.loads(manifest_path.read_text())
                size = manifest_path.stat().st_size
                payload_path = self.directory / str(manifest.get("payload", ""))
                if payload_path.exists():
                    size += payload_path.stat().st_size
                age = max(0.0, now - manifest_path.stat().st_mtime)
            except (OSError, ValueError):
                continue  # torn concurrent write; the next call sees it settled
            details.append({
                "fingerprint": manifest_path.stem,
                "n_rows": int(manifest.get("n_rows", 0)),
                "n_features": int(manifest.get("n_features", 0)),
                "bytes": int(size),
                "age_seconds": float(age),
                "updated_at": str(manifest.get("updated_at", "")),
                "format_version": manifest.get("format_version"),
            })
        details.sort(key=lambda d: (-d["age_seconds"], d["fingerprint"]))
        return details

    def evict(self, *, max_entries: int | None = None,
              max_bytes: int | None = None, fingerprint: str | None = None) -> int:
        """Explicitly evict entries; returns how many were removed.

        With ``fingerprint`` (a full fingerprint or an **unambiguous**
        prefix) exactly that entry is discarded; a prefix matching several
        entries raises ``ValueError`` instead of mass-deleting, and a prefix
        matching none removes nothing.  With ``max_entries`` / ``max_bytes``
        the oldest entries are discarded until the directory fits the given
        bounds (the store's own configured bounds are untouched).  The
        criteria compose: the fingerprint eviction runs first, then the
        bounds are enforced on what remains.  This is the
        ``python -m fairexp store evict`` CLI's backend.
        """
        removed = 0
        if fingerprint is not None:
            matches = [f for f in self.entries() if f.startswith(fingerprint)]
            if len(matches) > 1:
                previews = ", ".join(match[:16] for match in matches)
                raise ValueError(
                    f"fingerprint prefix {fingerprint!r} is ambiguous: "
                    f"matches {len(matches)} entries ({previews}, ...)"
                )
            if matches:
                self.discard(matches[0])
                removed += 1
        if max_entries is None and max_bytes is None:
            return removed
        details = self.entry_details()  # oldest first
        total_bytes = sum(d["bytes"] for d in details)
        while details and (
            (max_entries is not None and len(details) > max_entries)
            or (max_bytes is not None and total_bytes > max_bytes)
        ):
            oldest = details.pop(0)
            self.discard(oldest["fingerprint"])
            total_bytes -= oldest["bytes"]
            removed += 1
        return removed

    # ----------------------------------------------------------------- read
    def _read(self, fingerprint: str) -> dict[int, Counterfactual | None] | None:
        """Validated read of one entry; ``None`` on absence or corruption.

        Corrupt state (unparsable manifest, missing payload, checksum or
        version mismatch) is discarded so the next save republishes cleanly.
        """
        manifest_path = self._manifest_path(fingerprint)
        try:
            manifest_text = manifest_path.read_text()
        except OSError:
            return None  # no entry published (or it was concurrently evicted)
        try:
            manifest = json.loads(manifest_text)
            if manifest["format_version"] not in _READABLE_FORMAT_VERSIONS:
                raise ValueError(f"format version {manifest['format_version']}")
            if manifest["fingerprint"] != fingerprint:
                raise ValueError("fingerprint mismatch")
            payload_path = self.directory / manifest["payload"]
            # A manifest whose payload vanished is corruption, not absence:
            # (subject to the republish check below) discard it so the dead
            # manifest stops occupying an LRU slot and the next save
            # republishes cleanly.
            blob = payload_path.read_bytes()
            if hashlib.sha256(blob).hexdigest() != manifest["payload_sha256"]:
                raise ValueError("payload checksum mismatch")
            with np.load(payload_path) as payload:
                results = _unpack_results(payload)
            if len(results) != int(manifest["n_rows"]):
                raise ValueError("row count mismatch")
        except (OSError, KeyError, ValueError, TypeError, IndexError):
            self._discard_if_unchanged(fingerprint, manifest_text)
            return None
        self.bytes_read += len(blob)
        return results

    def _discard_if_unchanged(self, fingerprint: str, observed_text: str) -> None:
        """Discard a corrupt entry — unless it was republished meanwhile.

        A reader can fail on a *stale* view: it read manifest v1, a writer
        published v2, and the orphan sweep removed v1's payload under the
        reader's feet.  Discarding unconditionally would destroy the
        writer's fresh, valid entry, so the entry is only removed when the
        manifest on disk still reads exactly as the failing reader saw it.
        """
        try:
            current_text = self._manifest_path(fingerprint).read_text()
        except OSError:
            return  # already gone
        if current_text == observed_text:
            self.discard(fingerprint)

    def load(self, fingerprint: str) -> dict[int, Counterfactual | None] | None:
        """Results for one fingerprint, or ``None`` on a miss.

        A hit bumps the entry's recency (manifest mtime), which is what the
        LRU eviction orders on.
        """
        results = self._read(fingerprint)
        if results is None:
            self.miss_count += 1
            return None
        self.hit_count += 1
        try:
            os.utime(self._manifest_path(fingerprint))
        except OSError:
            pass  # entry may have been evicted by a concurrent process
        return results

    # ---------------------------------------------------------------- write
    def save(self, fingerprint: str, results: dict[int, Counterfactual | None],
             *, n_features: int, merge: bool = True) -> None:
        """Publish (or extend) one population entry atomically.

        With ``merge`` (the default) rows already on disk are folded in
        first, so sessions that explain a population incrementally — burden
        first, a later audit adding rows — grow one entry instead of losing
        the earlier rows.  The payload is written and ``os.replace``-d
        before the manifest referencing it, so a concurrent reader never
        observes a half-written entry.

        Concurrency contract: publishes are atomic but the read-merge-write
        is not — when two *processes* extend the same fingerprint
        simultaneously, the last complete publish wins and the other's fresh
        rows may be absent from disk.  That is a cache miss, not corruption:
        the losing rows are recomputed (and re-merged) on the next touch.
        Within one process the session serializes its own saves.
        """
        if not results:
            return
        if merge:
            existing = self._read(fingerprint)
            if existing:
                results = {**existing, **results}
        try:
            packed = _pack_results(results, n_features)
        except (TypeError, ValueError):
            # Some row carries non-JSON-serializable meta: persisting it
            # would hand the warm path different objects than the cold path
            # returned.  Skip the save — a miss and recompute is always safe.
            return
        token = os.urandom(4).hex()
        payload_path = self._payload_path(fingerprint, token)
        temp_payload = payload_path.with_suffix(f".tmp-{os.getpid()}-{token}")
        buffer = io.BytesIO()
        # Compressed since format version 2: counterfactual matrices are
        # mostly-unchanged copies of their originals plus boolean masks, so
        # deflate routinely halves the bytes on disk (the saving is recorded
        # in BENCH_STORE.json by benchmarks/test_bench_store.py).
        np.savez_compressed(buffer, **packed)
        blob = buffer.getvalue()  # checksummed in memory, written once
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "payload": payload_path.name,
            "payload_sha256": hashlib.sha256(blob).hexdigest(),
            "n_rows": len(results),
            "n_features": int(n_features),
            "updated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        }
        temp_manifest = self._manifest_path(fingerprint).with_suffix(
            f".json.tmp-{os.getpid()}-{token}"
        )
        try:
            temp_payload.write_bytes(blob)
            temp_manifest.write_text(json.dumps(manifest, indent=2) + "\n")
            os.replace(temp_payload, payload_path)
            os.replace(temp_manifest, self._manifest_path(fingerprint))
        except OSError:
            # Disk full / permissions lost mid-sweep: the audit's results
            # are already in memory — a skipped publish is a future miss,
            # never a reason to abort the audit.  Leftover temp files age
            # out via the orphan sweep.
            for leftover in (temp_payload, temp_manifest):
                try:
                    leftover.unlink()
                except OSError:
                    pass
            return
        self._enforce_bounds()

    def discard(self, fingerprint: str) -> None:
        """Remove one entry (manifest plus any payloads bearing its name)."""
        for path in [self._manifest_path(fingerprint),
                     *self.directory.glob(f"{fingerprint}.*.npz")]:
            try:
                path.unlink()
            except OSError:
                pass

    def clear(self) -> None:
        """Remove every entry (manifests, payloads, leftover temp files).

        Foreign files sharing the directory (a sweep journal, say) survive —
        clearing the *store* is not a license to delete someone else's
        bookkeeping.
        """
        for path in self._entry_manifests():
            try:
                path.unlink()
            except OSError:
                pass
        for pattern in ("*.npz", "*.tmp-*"):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------- eviction
    def _enforce_bounds(self) -> None:
        """Evict least-recently-used entries past the entry/byte bounds and
        sweep payloads no manifest references (superseded concurrent writes).

        Runs after every save, so a cheap stat-only pre-check short-circuits
        the common case: within bounds, one payload per manifest, no temp
        leftovers — no manifest needs parsing.
        """
        manifests = self._entry_manifests()
        quick_total = 0
        for path in (*manifests, *self.directory.glob("*.npz"),
                     *self.directory.glob("*.tmp-*")):
            try:
                quick_total += path.stat().st_size
            except OSError:
                quick_total = self.max_bytes + 1  # racing writer: full sweep
                break
        # Superseded payloads and abandoned temps count toward the byte
        # bound, so they cannot accumulate unswept past it — but their mere
        # presence (routine for 60 s after any re-save) does not force the
        # expensive full parse.
        if len(manifests) <= self.max_entries and quick_total <= self.max_bytes:
            return
        entries: list[tuple[float, str, int]] = []  # (mtime, fingerprint, bytes)
        referenced: set[str] = set()
        for manifest_path in self._entry_manifests():
            try:
                manifest = json.loads(manifest_path.read_text())
                payload_name = str(manifest.get("payload", ""))
                referenced.add(payload_name)
                size = manifest_path.stat().st_size
                payload_path = self.directory / payload_name
                if payload_path.exists():
                    size += payload_path.stat().st_size
                entries.append((manifest_path.stat().st_mtime, manifest_path.stem, size))
            except (OSError, ValueError):
                continue  # racing writer; the next sweep sees a settled state
        entries.sort()  # oldest first
        total = sum(size for _, _, size in entries)
        while entries and (len(entries) > self.max_entries
                           or (total > self.max_bytes and len(entries) > 1)):
            _, fingerprint, size = entries.pop(0)
            self.discard(fingerprint)
            total -= size
        now = time.time()
        # Orphans: payloads superseded by a concurrent writer, plus temp
        # files abandoned by a crashed one — both aged past the grace period.
        for pattern in ("*.npz", "*.tmp-*"):
            for stale_path in self.directory.glob(pattern):
                if stale_path.name in referenced:
                    continue
                try:
                    if now - stale_path.stat().st_mtime > _ORPHAN_GRACE_SECONDS:
                        stale_path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------ reporting
    def reset_counts(self) -> None:
        """Zero this process's hit/miss/bytes counters (entries stay on disk)."""
        self.hit_count = 0
        self.miss_count = 0
        self.bytes_read = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/bytes counters plus the directory's entry/byte/age totals.

        ``store_bytes_read`` is this process's cumulative payload read
        volume; ``store_entry_age_seconds_max`` / ``_mean`` describe the
        current directory (0 when empty).  All of it is folded into the
        ``BENCH_*`` trajectory records by ``benchmarks/conftest.py``.
        """
        now = time.time()
        total_bytes = 0
        ages: list[float] = []
        for path in self._entry_manifests():
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted by another process
            total_bytes += stat.st_size
            # Manifest mtime is the entry's recency stamp (loads bump it);
            # that is all the age aggregates need — no manifest parsing on
            # this hot, every-stats()-call path.
            ages.append(max(0.0, now - stat.st_mtime))
        for path in self.directory.glob("*.npz"):
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue  # concurrently evicted by another process
        return {
            "store_entries": len(ages),
            "store_bytes": int(total_bytes),
            "store_bytes_read": int(self.bytes_read),
            "store_hits": self.hit_count,
            "store_misses": self.miss_count,
            "store_entry_age_seconds_max": int(max(ages)) if ages else 0,
            "store_entry_age_seconds_mean": int(sum(ages) / len(ages)) if ages else 0,
        }

    def __repr__(self) -> str:
        return (f"CounterfactualStore({str(self.directory)!r}, "
                f"max_entries={self.max_entries}, max_bytes={self.max_bytes})")
