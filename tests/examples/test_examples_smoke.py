"""Smoke test: every script in ``examples/`` runs to completion.

The examples double as executable documentation — README and the docs pages
point readers at them — so a refactor that breaks one must fail CI even
though no unit test imports it.  Each script runs in its own interpreter
(exactly how a reader would launch it) with only ``src`` on ``PYTHONPATH``.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300, env=env, cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed\n--- stdout ---\n{completed.stdout[-2000:]}"
        f"\n--- stderr ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
