"""Probability calibration (Platt scaling) and calibration-gap measurement."""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError
from ..utils import sigmoid
from .base import BaseClassifier
from .metrics import calibration_curve

__all__ = ["PlattCalibrator", "CalibratedClassifier", "expected_calibration_error"]


class PlattCalibrator:
    """Fit a logistic map ``p -> sigmoid(a * logit(p) + b)`` to recalibrate scores."""

    def __init__(self, n_iter: int = 500, learning_rate: float = 0.1) -> None:
        self.n_iter = n_iter
        self.learning_rate = learning_rate
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores, y) -> "PlattCalibrator":
        """Fit the sigmoid parameters on scores vs. labels; returns ``self``."""
        scores = np.clip(np.asarray(scores, dtype=float), 1e-6, 1 - 1e-6)
        y = np.asarray(y, dtype=float)
        logits = np.log(scores / (1 - scores))
        a, b = 1.0, 0.0
        for _ in range(self.n_iter):
            predictions = sigmoid(a * logits + b)
            error = predictions - y
            grad_a = float(np.mean(error * logits))
            grad_b = float(np.mean(error))
            a -= self.learning_rate * grad_a
            b -= self.learning_rate * grad_b
        self.a_, self.b_ = a, b
        return self

    def transform(self, scores) -> np.ndarray:
        """Calibrated probabilities for raw positive-class scores."""
        if self.a_ is None:
            raise NotFittedError("PlattCalibrator is not fitted")
        scores = np.clip(np.asarray(scores, dtype=float), 1e-6, 1 - 1e-6)
        logits = np.log(scores / (1 - scores))
        return sigmoid(self.a_ * logits + self.b_)


class CalibratedClassifier(BaseClassifier):
    """Wrap a fitted classifier with a Platt-scaled probability output."""

    def __init__(self, base_model: BaseClassifier, n_iter: int = 500) -> None:
        super().__init__()
        self.base_model = base_model
        self.n_iter = n_iter
        self.calibrator_ = PlattCalibrator(n_iter=n_iter)

    def fit(self, X, y, sample_weight=None) -> "CalibratedClassifier":
        """Fit the base model (if needed) and its calibrator; returns ``self``."""
        if not getattr(self.base_model, "_fitted", False):
            self.base_model.fit(X, y)
        scores = self.base_model.predict_proba(X)[:, 1]
        self.calibrator_.fit(scores, np.asarray(y))
        self.classes_ = self.base_model.classes_
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Platt-calibrated class-membership probabilities for ``X``."""
        self._check_fitted()
        scores = self.base_model.predict_proba(X)[:, 1]
        positive = self.calibrator_.transform(scores)
        return np.column_stack([1 - positive, positive])


def expected_calibration_error(y_true, y_proba, *, n_bins: int = 10) -> float:
    """Expected calibration error: mean |confidence - accuracy| over probability bins."""
    y_true = np.asarray(y_true, dtype=float)
    y_proba = np.asarray(y_proba, dtype=float)
    mean_predicted, fraction_positive = calibration_curve(y_true, y_proba, n_bins=n_bins)
    if mean_predicted.size == 0:
        return 0.0
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_ids = np.clip(np.digitize(y_proba, edges[1:-1]), 0, n_bins - 1)
    counts = np.bincount(bin_ids, minlength=n_bins).astype(float)
    occupied = counts[counts > 0]
    weights = occupied / occupied.sum()
    return float(np.sum(weights * np.abs(mean_predicted - fraction_positive)))
