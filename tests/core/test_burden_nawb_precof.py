"""Tests for the burden [72], NAWB [73] and PreCoF [71] fairness explanations."""

import numpy as np
import pytest

from fairexp.core import BurdenExplainer, NAWBExplainer, PreCoFExplainer
from fairexp.datasets import make_loan_dataset
from fairexp.explanations import ActionabilityConstraints, GrowingSpheresCounterfactual
from fairexp.models import LogisticRegression


@pytest.fixture(scope="module")
def audited(loan_data, loan_model, loan_cf_generator):
    """Subset of the loan test split used by the counterfactual-based audits."""
    _, _, test = loan_data
    subset = test.subset(np.arange(min(90, test.n_samples)))
    return subset, loan_model, loan_cf_generator


class TestBurden:
    def test_biased_model_burden_gap_positive(self, audited):
        subset, _, generator = audited
        result = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        assert result.protected.burden > 0
        assert result.gap > 0.3
        assert result.ratio > 1.2

    def test_burden_counts_negatively_classified_members(self, audited):
        subset, model, generator = audited
        result = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        predictions = model.predict(subset.X)
        n_negative = int((predictions == 0).sum())
        assert result.protected.n_negative + result.reference.n_negative == n_negative

    def test_coverage_between_zero_and_one(self, audited):
        subset, _, generator = audited
        result = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        assert 0.0 <= result.protected.coverage <= 1.0
        assert 0.0 <= result.reference.coverage <= 1.0

    def test_error_based_selection_requires_labels(self, audited):
        subset, _, generator = audited
        with pytest.raises(ValueError):
            BurdenExplainer(generator, error_based=True).explain(
                subset.X, subset.sensitive_values
            )

    def test_error_based_explains_fewer_instances(self, audited):
        subset, _, generator = audited
        parity = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        error_based = BurdenExplainer(generator, error_based=True).explain(
            subset.X, subset.sensitive_values, y_true=subset.y
        )
        assert (
            error_based.protected.n_negative + error_based.reference.n_negative
            <= parity.protected.n_negative + parity.reference.n_negative
        )

    def test_fair_data_has_small_gap(self):
        dataset = make_loan_dataset(600, direct_bias=0.0, recourse_gap=0.0, random_state=1)
        train, test = dataset.split(random_state=2)
        model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
        constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
        generator = GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                                 random_state=0)
        subset = test.subset(np.arange(min(80, test.n_samples)))
        result = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        assert abs(result.gap) < 1.0

    def test_as_dict_keys(self, audited):
        subset, _, generator = audited
        result = BurdenExplainer(generator).explain(subset.X, subset.sensitive_values)
        assert set(result.as_dict()) == {
            "burden_protected", "burden_reference", "burden_gap", "burden_ratio",
            "coverage_protected", "coverage_reference",
        }


class TestNAWB:
    def test_nawb_gap_positive_for_biased_model(self, audited):
        subset, _, generator = audited
        result = NAWBExplainer(generator).explain(subset.X, subset.y, subset.sensitive_values)
        assert result.gap > 0
        assert result.protected.false_negative_rate > result.reference.false_negative_rate

    def test_nawb_counts_false_negatives_only(self, audited):
        subset, model, generator = audited
        result = NAWBExplainer(generator).explain(subset.X, subset.y, subset.sensitive_values)
        predictions = model.predict(subset.X)
        protected = subset.protected_mask
        expected_fn = int(((predictions == 0) & (subset.y == 1) & protected).sum())
        assert result.protected.n_false_negatives == expected_fn

    def test_nawb_zero_when_no_false_negatives(self, audited):
        subset, model, generator = audited
        # Pretend every negatively classified person truly deserved rejection.
        y_fake = model.predict(subset.X)
        result = NAWBExplainer(generator).explain(subset.X, y_fake, subset.sensitive_values)
        assert result.protected.nawb == 0.0
        assert result.reference.nawb == 0.0

    def test_mismatched_lengths_rejected(self, audited):
        subset, _, generator = audited
        from fairexp.exceptions import ValidationError

        with pytest.raises(ValidationError):
            NAWBExplainer(generator).explain(subset.X, subset.y[:-3], subset.sensitive_values)


class TestPreCoF:
    def test_explicit_mode_detects_sensitive_changes_when_allowed(self, audited):
        subset, model, _ = audited
        # Generator WITHOUT immutability: the sensitive attribute may be changed,
        # so explicit bias becomes visible through sensitive-attribute flips.
        generator = GrowingSpheresCounterfactual(model, subset.X, random_state=0)
        explainer = PreCoFExplainer(generator, subset.feature_names, "group", mode="explicit")
        result = explainer.explain(subset.X, subset.sensitive_values)
        assert result.sensitive_change_rate > 0.0
        assert 0.0 <= result.explicit_bias_rate <= 1.0

    def test_implicit_mode_surfaces_proxy_attributes(self, audited):
        subset, _, generator = audited
        explainer = PreCoFExplainer(generator, subset.feature_names, "group", mode="implicit")
        result = explainer.explain(subset.X, subset.sensitive_values)
        top = [name for name, _ in result.implicit_bias_attributes(3)]
        # The loan dataset's recourse gap runs through income and credit_score.
        assert set(top) & {"income", "credit_score", "debt"}

    def test_profiles_cover_both_groups(self, audited):
        subset, _, generator = audited
        result = PreCoFExplainer(generator, subset.feature_names, "group").explain(
            subset.X, subset.sensitive_values
        )
        assert result.protected_profile.group == 1
        assert result.reference_profile.group == 0
        assert result.protected_profile.n_explained > 0

    def test_change_frequencies_are_probabilities(self, audited):
        subset, _, generator = audited
        result = PreCoFExplainer(generator, subset.feature_names, "group").explain(
            subset.X, subset.sensitive_values
        )
        for value in result.protected_profile.change_frequency.values():
            assert 0.0 <= value <= 1.0

    def test_immutable_sensitive_never_changed(self, audited):
        subset, _, generator = audited
        # The session generator freezes immutable features, so the sensitive
        # attribute must never appear among the changes.
        result = PreCoFExplainer(generator, subset.feature_names, "group").explain(
            subset.X, subset.sensitive_values
        )
        assert result.protected_profile.change_frequency["group"] == 0.0
        assert result.sensitive_change_rate == 0.0
