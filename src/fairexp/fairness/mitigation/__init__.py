"""Unfairness mitigation at the three pipeline stages (pre / in / post)."""

from .inprocessing import FairLogisticRegression, RecourseRegularizedClassifier
from .postprocessing import GroupThresholdOptimizer, RejectOptionClassifier
from .preprocessing import disparate_impact_repair, massage_labels, reweighing_weights

__all__ = [
    "reweighing_weights",
    "massage_labels",
    "disparate_impact_repair",
    "FairLogisticRegression",
    "RecourseRegularizedClassifier",
    "GroupThresholdOptimizer",
    "RejectOptionClassifier",
]
