"""Static analysis for fairexp's own correctness contracts.

Nine PRs of growth left the package with conventions that were only
enforced by review: executors come from :class:`~fairexp.explanations.pool.
ExecutorPool`, randomness flows through injected ``numpy.random.Generator``
objects, shared counters are mutated under locks, and store fingerprints
cover every output-affecting constructor parameter.  This package turns
those conventions into machine-checked rules:

* :mod:`fairexp.lint.engine` — an AST-walking rule engine with per-file
  visitor dispatch, ``# fairexp: noqa[RULE]`` suppressions and a
  JSON-serializable baseline for grandfathered findings.
* :mod:`fairexp.lint.rules` — the FX001–FX008 rule set (one module per
  rule; see ``docs/api/lint.md`` for the table).
* :mod:`fairexp.lint.tsan` — the dynamic half: ``FAIREXP_TSAN=1`` swaps
  the lock primitives in ``backends.py``/``pool.py``/``serving.py`` for
  instrumented wrappers that raise on unlocked cross-thread counter
  mutation.

Run it via ``fairexp lint [paths]`` or programmatically::

    from fairexp.lint import lint_source
    findings = lint_source("def f(xs=[]):\\n    return xs\\n", path="ex.py")
    assert findings[0].rule == "FX003"
"""

from .engine import (
    Baseline,
    Finding,
    LintEngine,
    LintReport,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintEngine",
    "LintReport",
    "lint_paths",
    "lint_source",
]
