"""CI smoke for the out-of-process serving path — importable and runnable.

Not a test module.  Where ``benchmarks/test_bench_serving.py`` runs the
scoring server on an in-process thread, this script exercises the REAL
deployment shape: it exports the E1 loan model's compute graph to an
``.npz`` archive, launches ``python -m fairexp serve --graph …`` as a
separate process (which therefore scores without ever importing the
training classes it doesn't have in memory), and asserts over the loopback
wire that

* remote predictions are **bitwise-equal** to in-process ``model.predict``;
* 4 concurrent callers sharing one coalescing client issue **strictly
  fewer** wire calls than their 4 sequential independent counterparts,
  with per-caller row accounting intact.

It then relaunches the server as a TWO-graph fleet
(``--graph a.npz --graph b.npz``) and asserts cross-graph routing
correctness: batches routed by each graph's content hash come back
bitwise-equal to THAT graph's model (the two models disagree on part of
the matrix, so a misroute cannot cancel out), a header-less request is
refused, and the server's ``/stats`` books each graph's rows separately.

As a script it prints one JSON object with the parity/coalescing numbers
and appends the same points to ``BENCH_SERVING.json`` /
``BENCH_SERVING_FLEET_SUBPROCESS.json`` next to the benchmarks'
trajectories (CI uploads the artifact directory).  Loopback only: the
server binds 127.0.0.1 and no external network is touched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    CoalescingScoringClient,
    RemoteScoringBackend,
    export_model,
)
from fairexp.models import DecisionTreeClassifier, LogisticRegression

N_CALLERS = 4


def build_workload(n_samples: int = 500):
    """The E1 loan workload: two fitted models + the matrix to score."""
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(train.X,
                                                                   train.y)
    return model, tree, test.X


def launch_server(graph_paths) -> tuple[subprocess.Popen, str]:
    """Start ``python -m fairexp serve`` over one or more ``.npz`` archives
    and return (process, base URL)."""
    if isinstance(graph_paths, str):
        graph_paths = [graph_paths]
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "fairexp", "serve"]
    for path in graph_paths:
        argv += ["--graph", path]
    process = subprocess.Popen(argv, stdout=subprocess.PIPE, text=True, env=env)
    # First line is the launcher contract ("serving … on <url>"); the
    # per-graph hash lines that follow are informational.
    line = process.stdout.readline().strip()
    if not line or process.poll() is not None:
        raise RuntimeError(f"scoring server failed to start: {line!r}")
    return process, line.rsplit(" ", 1)[-1]


def run_checks(url: str, model, X: np.ndarray) -> dict:
    """Parity + coalescing assertions against a live server; numbers returned."""
    reference = np.asarray(model.predict(X))

    # Bitwise parity over the wire.
    solo = RemoteScoringBackend(url, window=0.0)
    remote = solo.predict(X)
    assert np.array_equal(remote, reference), "remote labels diverge from model.predict"
    solo.close()

    # Independent baseline: sequential callers, private clients.
    slices = np.array_split(np.arange(X.shape[0]), N_CALLERS)
    independent_clients = [CoalescingScoringClient(url, window=0.0)
                           for _ in range(N_CALLERS)]
    independent_rows = []
    for k, rows in enumerate(slices):
        backend = RemoteScoringBackend(independent_clients[k])
        for start in range(0, len(rows), 8):  # several batches per caller
            backend.predict(X[rows[start:start + 8]])
        independent_rows.append(backend.row_count)
        backend.close()
    independent_wire_calls = sum(c.wire_call_count for c in independent_clients)

    # Coalescing run: the same batches, concurrent callers, one client.
    client = CoalescingScoringClient(url, window=0.25)
    backends = [RemoteScoringBackend(client) for _ in range(N_CALLERS)]
    barrier = threading.Barrier(N_CALLERS)
    failures: list[BaseException] = []

    def run(k):
        try:
            barrier.wait(timeout=30)
            rows = slices[k]
            for start in range(0, len(rows), 8):
                out = backends[k].predict(X[rows[start:start + 8]])
                assert np.array_equal(out, reference[rows[start:start + 8]])
        except BaseException as error:  # noqa: BLE001 - surfaced below
            failures.append(error)
        finally:
            backends[k].close()

    threads = [threading.Thread(target=run, args=(k,)) for k in range(N_CALLERS)]
    start_time = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start_time
    if failures:
        raise failures[0]

    coalesced_rows = [backend.row_count for backend in backends]
    assert 0 < client.wire_call_count < independent_wire_calls, (
        f"coalescing did not reduce wire calls: {client.wire_call_count} vs "
        f"{independent_wire_calls}"
    )
    assert coalesced_rows == independent_rows, "per-caller row accounting drifted"
    assert client.wire_row_count == sum(coalesced_rows)

    return {
        "experiment": "SERVING_SUBPROCESS",
        "n_rows_scored": int(X.shape[0]),
        "parity_bitwise": True,
        "independent_wire_calls": independent_wire_calls,
        "coalesced_wire_calls": client.wire_call_count,
        "coalescing_factor": independent_wire_calls / max(client.wire_call_count, 1),
        "rows_per_caller": coalesced_rows,
        "coalesced_wall_seconds": elapsed,
    }


def run_fleet_checks(url: str, fleet: dict, X: np.ndarray) -> dict:
    """Cross-graph routing assertions against a live 2-graph fleet server.

    ``fleet`` maps each graph to its source model; the models disagree on
    part of ``X``, so a misrouted batch cannot come back bitwise-correct.
    """
    import urllib.request

    graphs = list(fleet)
    references = {graph: np.asarray(model.predict(X))
                  for graph, model in fleet.items()}
    assert not np.array_equal(references[graphs[0]], references[graphs[1]]), \
        "fleet models agree everywhere; routing errors would be invisible"

    client = CoalescingScoringClient(url, window=0.0)
    rows_routed = {}
    for graph in graphs:
        backend = RemoteScoringBackend(client, graph=graph)
        out = backend.predict(X)
        assert np.array_equal(out, references[graph]), (
            f"fleet misroute: labels for {graph.source} diverge from its model"
        )
        rows_routed[graph.signature()] = backend.row_count
        backend.close()

    # A fleet must refuse to guess: header-less requests are an error.
    headerless = RemoteScoringBackend(client)
    try:
        headerless.predict(X[:4])
        raise AssertionError("fleet server accepted a header-less request")
    except Exception as error:  # noqa: BLE001 - asserting the refusal shape
        assert "X-Fairexp-Graph" in str(error), error
    finally:
        headerless.close()

    # Server-side /stats books each graph's rows separately.
    with urllib.request.urlopen(f"{url}/stats", timeout=10) as reply:
        stats = json.loads(reply.read().decode("utf-8"))
    for signature, rows in rows_routed.items():
        assert stats["graphs"][signature]["rows"] == rows, (
            f"/stats rows for {signature[:12]} drifted"
        )

    return {
        "experiment": "SERVING_FLEET_SUBPROCESS",
        "n_graphs": len(graphs),
        "n_rows_per_graph": int(X.shape[0]),
        "routing_bitwise": True,
        "headerless_refused": True,
        "server_requests": stats["requests"],
        "server_rows": stats["rows"],
    }


def main() -> dict:
    """Export, serve out of process, verify; returns the recorded points."""
    model, tree, X = build_workload()
    with tempfile.TemporaryDirectory() as tmp:
        graph_path = os.path.join(tmp, "e1_model.npz")
        export_model(model).save(graph_path)
        process, url = launch_server(graph_path)
        try:
            point = run_checks(url, model, X)
        finally:
            process.terminate()
            process.wait(timeout=30)

        # Same archives, fleet shape: one server process, two graphs,
        # hash-routed requests.
        tree_path = os.path.join(tmp, "e1_tree.npz")
        model_graph, tree_graph = export_model(model), export_model(tree)
        model_graph.save(graph_path)
        tree_graph.save(tree_path)
        process, url = launch_server([graph_path, tree_path])
        try:
            fleet_point = run_fleet_checks(
                url, {model_graph: model, tree_graph: tree}, X)
        finally:
            process.terminate()
            process.wait(timeout=30)
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit_trajectory

    class _NoBenchmark:
        stats = None

    emit_trajectory("SERVING_SUBPROCESS", _NoBenchmark(), point)
    emit_trajectory("SERVING_FLEET_SUBPROCESS", _NoBenchmark(), fleet_point)
    return {**point, **fleet_point}


if __name__ == "__main__":
    print(json.dumps(main(), indent=2))
