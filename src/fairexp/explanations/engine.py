"""Batched counterfactual engine.

The per-instance counterfactual searches behind the paper's headline
quantities (burden [72], NAWB [73], PreCoF [71], the recourse-gap audits and
GLOBE-CE) are the hot path of the library: a naive audit issues dozens of
tiny ``model.predict`` calls per explained individual.  This module provides
the two pieces that coalesce that work into large vectorized predict batches:

* :class:`BatchModelAdapter` — wraps any classifier, counts and (optionally)
  caches ``predict`` calls so benchmarks can track the predict-call
  trajectory, not just wall time.  Dispatch itself lives behind the
  :class:`~fairexp.explanations.backends.PredictBackend` protocol
  (vectorized NumPy by default; ONNX / remote backends slot in behind the
  same counting interface);
* :class:`CounterfactualEngine` — drives a generator's cross-instance
  ``generate_batch_aligned`` kernel — optionally sharded across a worker
  pool (``n_jobs``) with bitwise-identical merged results — and maps results
  back onto caller indices, which is what the core fairness explainers
  (:class:`~fairexp.core.burden.BurdenExplainer` and friends) build on.

One layer up, :class:`~fairexp.explanations.session.AuditSession` owns one
adapter + engine pair and shares each population's counterfactual matrix
across every audit that requests it (session → engine → backend).

With an integer ``random_state`` the engine path reproduces the sequential
per-instance path exactly: every instance consumes its own freshly seeded
random stream in the same order the sequential search would, and only the
model evaluations are batched across instances.  For the sampling-based
generators the results are bitwise-identical; for gradient ascent they agree
up to the floating-point associativity of the backing BLAS (single-row vs.
batched mat-vec products can differ in the last ulp, which a long gradient
trajectory amplifies to ~1e-13).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from ..exceptions import ValidationError
from .backends import MemoizingPredictBackend, NumpyPredictBackend, ensure_backend
from .base import Counterfactual

__all__ = [
    "BatchModelAdapter",
    "CounterfactualEngine",
    "greedy_sparsify_batch",
    "lockstep_candidate_search",
    "shard_indices",
]


class BatchModelAdapter:
    """Counting / caching proxy around a classifier's prediction interface.

    Predict dispatch is delegated to a :class:`~fairexp.explanations.backends.PredictBackend`
    stack: a :class:`~fairexp.explanations.backends.NumpyPredictBackend` by
    default, optionally wrapped in a
    :class:`~fairexp.explanations.backends.MemoizingPredictBackend` when
    ``cache=True``.  The adapter itself only re-exports the backend's
    counters under their historical names and forwards every non-``predict``
    attribute to the wrapped model, so it stays a drop-in replacement for the
    model everywhere an audit expects one.

    Parameters
    ----------
    model:
        Any object exposing ``predict`` (and optionally ``predict_proba`` /
        ``gradient_input``).  May be omitted when ``backend`` is given.
    backend:
        An explicit :class:`~fairexp.explanations.backends.PredictBackend`
        (e.g. a :class:`~fairexp.explanations.backends.CallablePredictBackend`
        over an ONNX session or remote service).  Defaults to the vectorized
        NumPy backend over ``model``.
    cache:
        When ``True``, the backend is wrapped in a memoizing backend so
        repeated ``predict`` calls on an identical matrix are served from a
        memo.  Cache hits do not count as predict calls.
    max_cache_rows:
        Matrices with more rows than this are never cached (hashing huge
        candidate batches would cost more than the predict it saves).
    max_cache_entries:
        The memo is cleared once it holds this many entries.

    Attributes
    ----------
    predict_call_count:
        Number of ``predict`` invocations forwarded to the backend —
        the quantity the benchmarks record in ``benchmark.extra_info``.
    predict_row_count:
        Total number of rows across forwarded ``predict`` calls.
    cache_hit_count:
        Number of ``predict`` requests served from the memo.
    """

    def __init__(self, model=None, *, backend=None, cache: bool = True,
                 max_cache_rows: int = 2048, max_cache_entries: int = 256) -> None:
        if backend is None:
            if model is None:
                raise ValidationError("BatchModelAdapter needs a model or a backend")
            backend = NumpyPredictBackend(model)
        else:
            backend = ensure_backend(backend)
            if model is None:
                model = getattr(backend, "model", None)
        if cache and not isinstance(backend, MemoizingPredictBackend):
            backend = MemoizingPredictBackend(backend, max_rows=max_cache_rows,
                                              max_entries=max_cache_entries)
        self.model = model
        self.backend = backend

    @property
    def cache(self) -> bool:
        """Whether predictions are memoized — derived from the backend stack,
        so it cannot drift from what ``predict`` actually does (swap the
        backend to change it)."""
        return isinstance(self.backend, MemoizingPredictBackend)

    # ------------------------------------------------------------- interface
    def predict(self, X) -> np.ndarray:
        return self.backend.predict(X)

    def __getattr__(self, name):
        # Forward everything else (predict_proba, gradient_input, score,
        # coef_, distance_to_boundary, ...) so the adapter is a drop-in
        # replacement for the wrapped model.  Forwarding instead of defining
        # the optional methods keeps ``hasattr``-based capability checks
        # (e.g. GradientCounterfactual requiring ``gradient_input``) honest.
        if name in ("model", "backend"):
            raise AttributeError(name)
        model = self.model
        if model is None:
            raise AttributeError(name)
        return getattr(model, name)

    # ------------------------------------------------------------ accounting
    @property
    def predict_call_count(self) -> int:
        return self.backend.call_count

    @property
    def predict_row_count(self) -> int:
        return self.backend.row_count

    @property
    def cache_hit_count(self) -> int:
        return getattr(self.backend, "cache_hit_count", 0)

    def clear_memo(self) -> None:
        """Drop memoized predictions (no-op without a memoizing backend)."""
        clear = getattr(self.backend, "clear_memo", None)
        if clear is not None:
            clear()

    def reset_counts(self) -> None:
        self.backend.reset_counts()


def greedy_sparsify_batch(generator, X_rows: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Batched greedy sparsification, exactly equivalent to the sequential loop.

    The sequential ``_sparsify`` walks a candidate's changed features in order
    of increasing scaled magnitude and reverts each one whose revert keeps the
    target class — one single-row ``model.predict`` per feature.  This kernel
    keeps the *identical* greedy semantics while batching the model work:
    each round speculatively evaluates, for every active instance, the whole
    chain of cumulative prefix reverts in ONE stacked predict call.  As long
    as reverts are accepted the greedy trial at step ``j`` equals the ``j``-th
    prefix trial, so the first rejected revert in the prefix chain pins down
    the greedy state exactly; the chain is then rebuilt from the remaining
    features.  Predict calls drop from (#changed features) per instance to
    (#rejected reverts + 1) rounds shared by the whole batch.
    """
    X_rows = np.atleast_2d(np.asarray(X_rows, dtype=float))
    candidates = np.atleast_2d(np.asarray(candidates, dtype=float)).copy()
    n_rows = candidates.shape[0]

    # Greedy order per instance, fixed once from the initial candidate (this is
    # what the sequential implementation does as well).
    orders: list[list[int]] = []
    for k in range(n_rows):
        delta = candidates[k] - X_rows[k]
        changed = np.flatnonzero(~np.isclose(candidates[k], X_rows[k]))
        ranked = changed[np.argsort(np.abs(delta / generator.scale_)[changed])]
        orders.append([int(j) for j in ranked])

    active = [k for k in range(n_rows) if orders[k]]
    while active:
        trials: list[np.ndarray] = []
        spans: list[tuple[int, int]] = []
        for k in active:
            trial = candidates[k].copy()
            rows = []
            for column in orders[k]:
                trial[column] = X_rows[k, column]
                rows.append(trial.copy())
            trials.append(np.stack(rows))
            spans.append((k, len(orders[k])))
        predictions = generator._predict(np.vstack(trials))

        offset = 0
        next_active: list[int] = []
        for k, length in spans:
            block = predictions[offset:offset + length]
            offset += length
            order = orders[k]
            failures = np.flatnonzero(block != generator.target_class)
            accepted = order if failures.size == 0 else order[: int(failures[0])]
            for column in accepted:
                candidates[k, column] = X_rows[k, column]
            orders[k] = [] if failures.size == 0 else order[int(failures[0]) + 1:]
            if orders[k]:
                next_active.append(k)
        active = next_active
    return candidates


def lockstep_candidate_search(
    generator,
    X: np.ndarray,
    draw: Callable[[np.random.Generator, np.ndarray, int], np.ndarray],
    n_steps: int,
) -> list[Counterfactual | None]:
    """Cross-instance rejection-sampling search over a widening schedule.

    All instances advance through the radius/shell schedule in lockstep: one
    step draws each still-unsolved instance's candidate matrix (from its OWN
    freshly seeded random stream, preserving the sequential draws exactly),
    projects the resulting ``(n_unsolved, n_candidates, d)`` tensor through
    the actionability constraints in one shot, and issues a single
    ``model.predict`` over all candidates of all unsolved instances — instead
    of ``n_instances × n_steps`` separate predicts.  Solved instances keep
    their best (minimum-distance) hit and drop out of later steps, exactly as
    the sequential search stops consuming its random stream once it returns.
    """
    from .counterfactual import counterfactual_distance
    from ..utils import check_random_state

    X = np.atleast_2d(np.asarray(X, dtype=float))
    n_instances, n_features = X.shape
    rngs = [check_random_state(generator.random_state) for _ in range(n_instances)]
    unsolved = list(range(n_instances))
    chosen: dict[int, np.ndarray] = {}

    for step in range(n_steps):
        if not unsolved:
            break
        candidates = np.stack([draw(rngs[i], X[i], step) for i in unsolved])
        projected = generator.constraints.project(X[unsolved][:, None, :], candidates)
        predictions = generator._predict(
            projected.reshape(-1, n_features)
        ).reshape(len(unsolved), -1)

        still_unsolved: list[int] = []
        for k, i in enumerate(unsolved):
            hits = np.flatnonzero(predictions[k] == generator.target_class)
            if hits.size == 0:
                still_unsolved.append(i)
                continue
            distances = np.array([
                counterfactual_distance(X[i], projected[k, h], scale=generator.scale_,
                                        metric=generator.metric)
                for h in hits
            ])
            chosen[i] = projected[k, hits[np.argmin(distances)]]
        unsolved = still_unsolved

    results: list[Counterfactual | None] = [None] * n_instances
    solved = sorted(chosen)
    if solved:
        sparse = greedy_sparsify_batch(generator, X[solved],
                                       np.stack([chosen[i] for i in solved]))
        for i, result in zip(solved, generator._make_results_batch(X[solved], sparse)):
            results[i] = result
    return results


def shard_indices(n_items: int, n_shards: int) -> list[np.ndarray]:
    """Deterministic contiguous shards of ``range(n_items)``.

    ``np.array_split`` semantics (shard sizes differ by at most one), with
    empty shards dropped.  The split depends only on ``(n_items, n_shards)``
    so a sharded run is reproducible, and because every lockstep kernel
    seeds each instance's random stream independently, per-shard results are
    bitwise-identical to the unsharded pass.
    """
    n_shards = max(1, min(int(n_shards), int(n_items))) if n_items else 1
    return [shard for shard in np.array_split(np.arange(n_items), n_shards) if shard.size]


class CounterfactualEngine:
    """Batched front-end over a counterfactual generator.

    Parameters
    ----------
    generator:
        Any :class:`~fairexp.explanations.counterfactual.BaseCounterfactualGenerator`.
    adapt_model:
        When ``True`` (the default) the generator's model is wrapped in a
        :class:`BatchModelAdapter` so every predict issued through the engine
        is counted; an already-wrapped model is left alone, letting several
        explainers share one adapter's counters.  The automatic wrap disables
        the adapter's memo: a cached adapter would keep serving stale labels
        if the underlying model were refit in place between audits.  Callers
        who know their model is frozen can pre-wrap with
        ``BatchModelAdapter(model, cache=True)`` themselves.
    n_jobs:
        Number of worker threads :meth:`generate_aligned` splits its
        work-list across.  ``1`` (the default) runs the single lockstep
        batch; ``-1`` uses one worker per CPU.  Shards are deterministic
        (:func:`shard_indices`) and each instance owns its freshly seeded
        random stream, so the merged results are bitwise-identical to
        ``n_jobs=1`` — only the predict batching (and hence the call count)
        changes.  Backends are thread-safe, so shards may share one adapter.
        Generators seeded with a shared ``np.random.Generator`` instance
        always run the sequential pass (one stream cannot be sharded).
    """

    def __init__(self, generator, *, adapt_model: bool = True, n_jobs: int = 1) -> None:
        self.generator = generator
        self.n_jobs = n_jobs
        if adapt_model and not isinstance(generator.model, BatchModelAdapter):
            generator.model = BatchModelAdapter(generator.model, cache=False)

    # ------------------------------------------------------------ properties
    @property
    def adapter(self) -> BatchModelAdapter | None:
        model = self.generator.model
        return model if isinstance(model, BatchModelAdapter) else None

    @property
    def predict_call_count(self) -> int:
        adapter = self.adapter
        return adapter.predict_call_count if adapter is not None else 0

    # ------------------------------------------------------------ generation
    def _resolve_n_jobs(self, n_rows: int) -> int:
        # A np.random.Generator instance as random_state is ONE shared stream:
        # per-instance draws consume it in sequence, so shards would both race
        # on its (non-thread-safe) internal state and change the draw order.
        # Integer / None seeds give every instance its own stream and shard
        # deterministically; a Generator falls back to the sequential pass.
        if isinstance(getattr(self.generator, "random_state", None), np.random.Generator):
            return 1
        n_jobs = self.n_jobs
        if n_jobs is None:
            n_jobs = 1
        if n_jobs < 0:
            n_jobs = os.cpu_count() or 1
        return max(1, min(int(n_jobs), int(n_rows))) if n_rows else 1

    def generate_aligned(self, X) -> list[Counterfactual | None]:
        """Counterfactuals for every row of ``X`` (``None`` where infeasible).

        With ``n_jobs > 1`` the work-list is split into deterministic shards
        executed on a thread pool against the shared (thread-safe) backend,
        and the aligned per-shard results are merged back into caller order.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        n_jobs = self._resolve_n_jobs(X.shape[0])
        if n_jobs == 1:
            return self.generator.generate_batch_aligned(X)
        shards = shard_indices(X.shape[0], n_jobs)
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            parts = list(pool.map(
                lambda shard: self.generator.generate_batch_aligned(X[shard]), shards
            ))
        results: list[Counterfactual | None] = [None] * X.shape[0]
        for shard, part in zip(shards, parts):
            for i, result in zip(shard, part):
                results[int(i)] = result
        return results

    def generate_for(self, X, indices) -> dict[int, Counterfactual]:
        """Counterfactuals for ``X[indices]``, keyed by the original row index.

        Rows whose search exhausts its budget are simply absent from the
        result, mirroring the ``try/except InfeasibleRecourseError`` pattern
        the per-instance loops used.
        """
        X = np.asarray(X, dtype=float)
        indices = np.asarray(indices, dtype=int)
        if indices.size == 0:
            return {}
        results = self.generate_aligned(X[indices])
        return {
            int(i): result for i, result in zip(indices, results) if result is not None
        }
