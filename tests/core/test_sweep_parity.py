"""Bitwise parity: every legacy ``run_*`` call ≡ its SweepSpec default cell.

The sweep layer replaced the hand-written experiment runners with declarative
factorial designs, under a hard compatibility contract: **each factor's first
level plus the spec's fixed arguments reproduce the historical hard-coded run
bit for bit**.  This suite enforces that contract three ways:

1. *Default-cell parity* — for all 16 experiments, ``run_eN(**reduced)``
   equals executing ``SweepRegistry.get(id).cell(overrides=reduced)`` exactly
   (NaN-aware recursive compare, no tolerances).
2. *Non-default-level parity* — pinning a factor through the spec
   (``where={"backend": ["onnx"]}``, a non-default model family, the adaptive
   schedule) equals passing the same keyword to the legacy function.
3. *Store parity* — a legacy run against ``$FAIREXP_STORE_DIR`` and a sweep
   run against ``run_sweep(store=...)`` persist byte-identical counterfactual
   matrices: same store fingerprints, same ``payload_sha256`` manifests.
"""

import json
import math

import pytest

from fairexp import experiments as legacy
from fairexp.sweep import SweepRegistry, run_sweep

# Reduced workload sizes: enough structure for every metric to be non-trivial,
# small enough that running each experiment twice stays cheap.
REDUCED = {
    "FIG1": {},
    "FIG2": {},
    "TAB1": {},
    "E1/E2": {"n_samples": 300, "audit_size": 24},
    "E3": {"n_samples": 300, "audit_size": 24},
    "E4": {"n_samples": 300},
    "E5": {"n_samples": 300},
    "E6": {"n_samples": 300, "audit_size": 6},
    "E7": {"n_samples": 300},
    "E8": {"n_samples": 300, "audit_size": 40},
    "E9": {"n_samples": 300},
    "E10": {"n_users": 40, "n_items": 25},
    "E11": {"n_candidates": 120},
    "E12": {"n_nodes": 60},
    "E13": {"n_samples": 300},
    "E14": {"n_samples": 400},
}

LEGACY = {
    "FIG1": legacy.run_fig1_taxonomy,
    "FIG2": legacy.run_fig2_taxonomy,
    "TAB1": legacy.run_table1,
    "E1/E2": legacy.run_e1_e2_burden_nawb,
    "E3": legacy.run_e3_precof,
    "E4": legacy.run_e4_facts,
    "E5": legacy.run_e5_group_counterfactuals,
    "E6": legacy.run_e6_causal_recourse,
    "E7": legacy.run_e7_fair_recourse,
    "E8": legacy.run_e8_fairness_shap,
    "E9": legacy.run_e9_data_explanations,
    "E10": legacy.run_e10_recsys,
    "E11": legacy.run_e11_ranking,
    "E12": legacy.run_e12_graphs,
    "E13": legacy.run_e13_contrastive,
    "E14": legacy.run_e14_mitigation,
}


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    monkeypatch.delenv("FAIREXP_STORE_DIR", raising=False)


def assert_identical(a, b, path="result"):
    """Recursive bitwise equality; NaN == NaN (still a bit pattern match)."""
    assert type(a) is type(b), f"{path}: {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: key sets differ"
        for key in a:
            assert_identical(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: lengths differ"
        for index, (x, y) in enumerate(zip(a, b)):
            assert_identical(x, y, f"{path}[{index}]")
    elif isinstance(a, float) and math.isnan(a):
        assert isinstance(b, float) and math.isnan(b), f"{path}: NaN vs {b!r}"
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def run_cell(experiment, where=None, overrides=None):
    spec = SweepRegistry.get(experiment)
    cell = spec.cell(where=where, overrides=overrides)
    return spec.runner(**cell.params())


class TestDefaultCellParity:
    """spec.cell(overrides=reduced) ≡ run_eN(**reduced) for all 16 experiments.

    The legacy call leaves every non-reduced argument at the function's
    signature default; the cell fills them from the spec's fixed args and the
    factors' first levels — parity means those two sources agree exactly.
    """

    @pytest.mark.parametrize("experiment", sorted(REDUCED),
                             ids=lambda e: e.replace("/", "_"))
    def test_parity(self, experiment):
        reduced = REDUCED[experiment]
        expected = LEGACY[experiment](**reduced)
        actual = run_cell(experiment, overrides=reduced)
        assert_identical(expected, actual)

    def test_registry_covers_exactly_these_experiments(self):
        assert set(SweepRegistry.ids()) == set(REDUCED)


class TestNonDefaultLevelParity:
    """Pinning a non-default factor level ≡ the same legacy keyword."""

    @pytest.mark.parametrize("experiment", ["E1/E2", "E4"])
    def test_onnx_backend(self, experiment):
        reduced = REDUCED[experiment]
        expected = LEGACY[experiment](backend="onnx", **reduced)
        actual = run_cell(experiment, where={"backend": ["onnx"]},
                          overrides=reduced)
        assert_identical(expected, actual)

    def test_adaptive_schedule(self):
        reduced = REDUCED["E1/E2"]
        expected = legacy.run_e1_e2_burden_nawb(schedule="adaptive", **reduced)
        actual = run_cell("E1/E2", where={"schedule": ["adaptive"]},
                          overrides=reduced)
        assert_identical(expected, actual)

    def test_explainer_level(self):
        reduced = REDUCED["E1/E2"]
        expected = legacy.run_e1_e2_burden_nawb(explainer="random_search",
                                                **reduced)
        actual = run_cell("E1/E2", where={"explainer": ["random_search"]},
                          overrides=reduced)
        assert_identical(expected, actual)

    def test_model_family(self):
        reduced = REDUCED["E4"]
        expected = legacy.run_e4_facts(model="tree", **reduced)
        actual = run_cell("E4", where={"model": ["tree"]}, overrides=reduced)
        assert_identical(expected, actual)

    def test_e14_dataset_level(self):
        reduced = REDUCED["E14"]
        expected = legacy.run_e14_mitigation(dataset="loan", **reduced)
        actual = run_cell("E14", where={"dataset": ["loan"]}, overrides=reduced)
        assert_identical(expected, actual)


def _store_checksums(store_dir):
    """fingerprint -> payload_sha256, straight from the store's manifests."""
    checksums = {}
    for manifest in sorted(store_dir.glob("*.json")):
        if manifest.name == "SWEEP_JOURNAL.json":
            continue
        payload = json.loads(manifest.read_text())
        checksums[manifest.stem] = payload["payload_sha256"]
    return checksums


class TestStoreParity:
    """Legacy-run and sweep-run counterfactual matrices are byte-identical.

    The persistent store records a ``payload_sha256`` over the exact matrix
    bytes it writes, so comparing manifests across two independent store
    directories is a bitwise comparison of the generated counterfactuals —
    the strongest form of the parity claim, covering the matrices themselves
    rather than the scalar metrics derived from them.
    """

    def test_cf_matrices_bitwise_identical(self, tmp_path, monkeypatch):
        reduced = REDUCED["E1/E2"]
        legacy_store = tmp_path / "legacy"
        sweep_store = tmp_path / "sweep"

        monkeypatch.setenv("FAIREXP_STORE_DIR", str(legacy_store))
        legacy.run_e1_e2_burden_nawb(**reduced)
        monkeypatch.delenv("FAIREXP_STORE_DIR")

        result = run_sweep(
            ["E1/E2"],
            where={"explainer": ["growing_spheres"], "schedule": ["geometric"],
                   "backend": ["numpy"], "kernels": ["default"]},
            overrides=reduced, store=sweep_store,
        )
        assert len(result.cells) == 1
        assert result.cells[0].status == "completed"

        legacy_sums = _store_checksums(legacy_store)
        sweep_sums = _store_checksums(sweep_store)
        assert legacy_sums, "legacy run persisted no counterfactual matrices"
        assert legacy_sums == sweep_sums

    def test_sweep_replay_serves_stored_matrices(self, tmp_path):
        """The replayed cell's metrics replay bitwise out of the warm store,
        at zero engine predict calls."""
        reduced = REDUCED["E1/E2"]
        selection = dict(
            where={"explainer": ["growing_spheres"], "schedule": ["geometric"],
                   "backend": ["numpy"], "kernels": ["default"]},
            overrides=reduced, store=tmp_path / "store",
        )
        cold = run_sweep(["E1/E2"], **selection)
        warm = run_sweep(["E1/E2"], resume=True, **selection)
        assert cold.cells[0].stats["engine_predict_calls"] > 0
        assert warm.cells[0].replayed
        assert warm.cells[0].status == "completed"  # metrics verified vs journal
        assert warm.cells[0].stats["engine_predict_calls"] == 0
        assert warm.cells[0].stats["store_row_hits"] > 0
