"""Explaining exposure unfairness in a recommender system.

Builds a biased implicit-feedback dataset (long-tail items under-interacted,
one user group less active), fits a RecWalk-style recommender, measures
producer-side exposure disparity, and explains it with the three surveyed
recommendation approaches: CEF feature perturbations [87], CFairER
attribute-level counterfactuals [86], and edge-removal counterfactuals on the
random-walk graph [84]; finally GNNUERS [91] and fairness-aware KG path
re-ranking [44] address the consumer side.

Run with:  python examples/recommendation_fairness.py
"""

import numpy as np

from fairexp.core import (
    CEFExplainer,
    CFairERExplainer,
    EdgeRemovalExplainer,
    GNNUERSExplainer,
    PathRecommendation,
    fairness_aware_path_rerank,
)
from fairexp.recsys import (
    RecWalkRecommender,
    exposure_disparity,
    make_biased_interactions,
    ndcg_at_k,
    popularity_lift,
)


def main() -> None:
    rng = np.random.default_rng(0)
    interactions = make_biased_interactions(120, 60, popularity_bias=2.5, activity_gap=0.5,
                                            random_state=0)
    recommender = RecWalkRecommender(n_steps=20).fit(interactions)
    recommendations = recommender.recommend_all(10)

    disparity = exposure_disparity(recommendations, interactions.item_groups)
    print("== Producer-side exposure audit")
    print(f"   exposure disparity against long-tail items: {disparity:.3f}")
    print(f"   popularity lift of the recommendations:     "
          f"{popularity_lift(recommendations, interactions):.2f}\n")

    item_attributes = (rng.random((interactions.n_items, 6)) < 0.3).astype(float)
    item_attributes[:, 0] = (interactions.item_groups == 0).astype(float)
    attribute_names = ["head_item", "genre_a", "genre_b", "recent", "discounted", "local"]
    holdout = (rng.random(interactions.matrix.shape) < 0.1).astype(float)

    print("== CEF: which item features explain the unfairness?")
    cef = CEFExplainer(recommender, item_attributes, holdout, k=10,
                       feature_names=attribute_names).explain()
    for name, score in cef.ranked()[:3]:
        print(f"   {name:12s} explainability score {score:+.3f}")
    print()

    print("== CFairER: minimal attribute set improving exposure fairness")
    cfairer = CFairERExplainer(recommender, item_attributes, attribute_names=attribute_names,
                               k=10, max_attributes=2).explain()
    print(f"   selected attributes: {cfairer.describe()}")
    print(f"   exposure disparity {cfairer.base_disparity:.3f} -> {cfairer.final_disparity:.3f}\n")

    print("== Edge-removal counterfactuals on the interaction graph")
    edge = EdgeRemovalExplainer(recommender, k=10, max_edges=25, random_state=0)
    for explanation in edge.explain_group_exposure()[:3]:
        print(f"   {explanation.describe()}")
    print()

    print("== GNNUERS: consumer-side (user group) quality gap")
    gnnuers = GNNUERSExplainer(recommender, holdout, k=10, max_removals=3,
                               candidate_edges=20, random_state=0).explain()
    print(f"   NDCG gap {gnnuers.base_gap:.4f} -> {gnnuers.final_gap:.4f} after removing "
          f"{len(gnnuers.removed_edges)} interactions\n")

    print("== Fairness-aware KG path re-ranking")
    scores = recommender.score(0)
    paths = [
        PathRecommendation(user=0, item=i, score=float(scores[i]),
                           path=("user0", "interacted", f"item{i}"),
                           item_group=int(interactions.item_groups[i]))
        for i in np.argsort(-scores)[:30]
    ]
    reranked = fairness_aware_path_rerank(paths, k=10, min_protected_share=0.4)
    share = np.mean([r.item_group for r in reranked])
    print(f"   long-tail share in user 0's top-10 after re-ranking: {share:.0%}")
    print(f"   baseline NDCG@10 of the recommender: {ndcg_at_k(recommendations, holdout):.3f}")


if __name__ == "__main__":
    main()
