"""Recommendation models: matrix factorization, item-kNN and RecWalk.

All recommenders share the same minimal interface used by the fairness
explainers: ``fit(interactions)``, ``score(user)`` returning a score per item,
and ``recommend(user, k)`` returning the top-k unseen items.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..utils import check_random_state
from .interactions import InteractionMatrix

__all__ = ["BaseRecommender", "MatrixFactorization", "ItemKNNRecommender", "RecWalkRecommender"]


class BaseRecommender:
    """Common scoring / top-k logic for recommenders."""

    def __init__(self) -> None:
        self.interactions_: InteractionMatrix | None = None

    def fit(self, interactions: InteractionMatrix) -> "BaseRecommender":
        """Fit on the interaction matrix; returns ``self``."""
        raise NotImplementedError

    def score(self, user: int) -> np.ndarray:
        """Return a relevance score for every item for the given user."""
        raise NotImplementedError

    def _check_fitted(self) -> None:
        if self.interactions_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    def score_matrix(self) -> np.ndarray:
        """Score every (user, item) pair; shape ``(n_users, n_items)``."""
        self._check_fitted()
        return np.vstack([self.score(u) for u in range(self.interactions_.n_users)])

    def recommend(self, user: int, k: int = 10, *, exclude_seen: bool = True) -> np.ndarray:
        """Return the indices of the top-k items for ``user`` (highest score first)."""
        self._check_fitted()
        scores = self.score(user).astype(float).copy()
        if exclude_seen:
            seen = self.interactions_.matrix[user] > 0
            scores[seen] = -np.inf
        k = min(k, scores.shape[0])
        return np.argsort(-scores, kind="stable")[:k]

    def recommend_all(self, k: int = 10, *, exclude_seen: bool = True) -> np.ndarray:
        """Top-k recommendations for every user; shape ``(n_users, k)``."""
        self._check_fitted()
        return np.vstack([
            self.recommend(u, k, exclude_seen=exclude_seen)
            for u in range(self.interactions_.n_users)
        ])


class MatrixFactorization(BaseRecommender):
    """Implicit-feedback matrix factorization trained with SGD on squared error.

    Parameters
    ----------
    n_factors:
        Latent dimensionality.
    n_epochs, learning_rate, reg:
        SGD hyper-parameters.
    n_negatives:
        Number of sampled negative (unobserved) entries per positive per epoch.
    """

    def __init__(
        self,
        n_factors: int = 16,
        n_epochs: int = 30,
        learning_rate: float = 0.05,
        reg: float = 0.02,
        n_negatives: int = 3,
        random_state: int | None = 0,
    ) -> None:
        super().__init__()
        self.n_factors = n_factors
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.reg = reg
        self.n_negatives = n_negatives
        self.random_state = random_state
        self.user_factors_: np.ndarray | None = None
        self.item_factors_: np.ndarray | None = None

    def fit(self, interactions: InteractionMatrix) -> "MatrixFactorization":
        """Learn the user/item factors; returns ``self``."""
        rng = check_random_state(self.random_state)
        self.interactions_ = interactions
        R = interactions.matrix
        n_users, n_items = R.shape
        P = rng.normal(scale=0.1, size=(n_users, self.n_factors))
        Q = rng.normal(scale=0.1, size=(n_items, self.n_factors))
        positive_pairs = np.argwhere(R > 0)

        for _ in range(self.n_epochs):
            order = rng.permutation(positive_pairs.shape[0])
            for idx in order:
                user, item = positive_pairs[idx]
                samples = [(item, 1.0)]
                for _ in range(self.n_negatives):
                    negative = int(rng.integers(0, n_items))
                    if R[user, negative] == 0:
                        samples.append((negative, 0.0))
                for j, target in samples:
                    prediction = P[user] @ Q[j]
                    error = target - prediction
                    P[user] += self.learning_rate * (error * Q[j] - self.reg * P[user])
                    Q[j] += self.learning_rate * (error * P[user] - self.reg * Q[j])

        self.user_factors_, self.item_factors_ = P, Q
        return self

    def score(self, user: int) -> np.ndarray:
        """Preference scores of every item for ``user``."""
        self._check_fitted()
        return self.user_factors_[user] @ self.item_factors_.T


class ItemKNNRecommender(BaseRecommender):
    """Item-based collaborative filtering with cosine similarity."""

    def __init__(self, n_neighbors: int = 20) -> None:
        super().__init__()
        self.n_neighbors = n_neighbors
        self.similarity_: np.ndarray | None = None

    def fit(self, interactions: InteractionMatrix) -> "ItemKNNRecommender":
        """Build the item-item similarity model; returns ``self``."""
        self.interactions_ = interactions
        R = interactions.matrix
        norms = np.linalg.norm(R, axis=0)
        norms[norms == 0] = 1.0
        similarity = (R.T @ R) / np.outer(norms, norms)
        np.fill_diagonal(similarity, 0.0)
        # Keep only the top-n_neighbors similarities per item.
        if self.n_neighbors < similarity.shape[0]:
            for j in range(similarity.shape[0]):
                threshold_idx = np.argsort(-similarity[j])[self.n_neighbors:]
                similarity[j, threshold_idx] = 0.0
        self.similarity_ = similarity
        return self

    def score(self, user: int) -> np.ndarray:
        """Preference scores of every item for ``user``."""
        self._check_fitted()
        return self.interactions_.matrix[user] @ self.similarity_


class RecWalkRecommender(BaseRecommender):
    """RecWalk-style random-walk scoring on the user–item bipartite graph.

    Following Nikolakopoulos & Karypis [85], item scores for a user are the
    stationary probabilities of a personalized random walk with restart over
    the user–item graph; the inter-item transition mixes the bipartite walk
    with an item–item similarity component weighted by ``alpha``.
    """

    def __init__(self, alpha: float = 0.7, restart: float = 0.15, n_steps: int = 30) -> None:
        super().__init__()
        if not 0.0 <= alpha <= 1.0:
            raise ValidationError("alpha must be in [0, 1]")
        self.alpha = alpha
        self.restart = restart
        self.n_steps = n_steps
        self.transition_: np.ndarray | None = None

    def _build_transition(self, interactions: InteractionMatrix) -> np.ndarray:
        R = interactions.matrix
        n_users, n_items = R.shape
        n = n_users + n_items
        adjacency = np.zeros((n, n))
        adjacency[:n_users, n_users:] = R
        adjacency[n_users:, :n_users] = R.T

        # Item-item similarity component (cosine), mixed in with weight (1 - alpha).
        norms = np.linalg.norm(R, axis=0)
        norms[norms == 0] = 1.0
        item_similarity = (R.T @ R) / np.outer(norms, norms)
        np.fill_diagonal(item_similarity, 0.0)

        transition = np.zeros((n, n))
        row_sums = adjacency.sum(axis=1)
        row_sums[row_sums == 0] = 1.0
        walk = adjacency / row_sums[:, None]
        transition[:n_users] = walk[:n_users]
        item_sim_sums = item_similarity.sum(axis=1)
        item_sim_sums[item_sim_sums == 0] = 1.0
        item_walk = item_similarity / item_sim_sums[:, None]
        transition[n_users:] = (
            self.alpha * walk[n_users:]
        )
        transition[n_users:, n_users:] += (1 - self.alpha) * item_walk
        # Re-normalize rows that became empty (cold items).
        empty = transition.sum(axis=1) == 0
        transition[empty] = 1.0 / n
        transition /= transition.sum(axis=1, keepdims=True)
        return transition

    def fit(self, interactions: InteractionMatrix) -> "RecWalkRecommender":
        """Build the RecWalk transition model; returns ``self``."""
        self.interactions_ = interactions
        self.transition_ = self._build_transition(interactions)
        return self

    def refit_without(self, user: int, item: int) -> "RecWalkRecommender":
        """Return a new fitted recommender with one interaction removed.

        Used by the edge-removal counterfactual explanations [84].
        """
        modified = self.interactions_.remove_interaction(user, item)
        clone = RecWalkRecommender(alpha=self.alpha, restart=self.restart, n_steps=self.n_steps)
        return clone.fit(modified)

    def score(self, user: int) -> np.ndarray:
        """Preference scores of every item for ``user``."""
        self._check_fitted()
        n_users = self.interactions_.n_users
        n = self.transition_.shape[0]
        restart_vector = np.zeros(n)
        restart_vector[user] = 1.0
        distribution = restart_vector.copy()
        for _ in range(self.n_steps):
            distribution = (
                (1 - self.restart) * distribution @ self.transition_
                + self.restart * restart_vector
            )
        return distribution[n_users:]
