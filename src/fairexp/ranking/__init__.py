"""Ranking substrate: score-based rankers, candidates and fairness-aware re-ranking."""

from .rankers import RankedCandidates, ScoreRanker, fair_topk_rerank, make_ranking_candidates

__all__ = ["RankedCandidates", "ScoreRanker", "make_ranking_candidates", "fair_topk_rerank"]
