"""Dataset container used throughout fairexp.

A :class:`Dataset` bundles a numeric feature matrix with per-feature metadata
(:class:`FeatureSpec`), a binary label, and the name of the sensitive
attribute.  All fairness metrics and explanation methods in the library
consume this container so the sensitive attribute, actionability and
immutability information travel with the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["FeatureSpec", "Dataset"]


@dataclass(frozen=True)
class FeatureSpec:
    """Metadata for one feature column.

    Attributes
    ----------
    name:
        Column name.
    kind:
        ``"numeric"``, ``"binary"`` or ``"categorical"`` (categorical columns
        hold integer category codes).
    actionable:
        Whether an individual can plausibly change this feature (used by the
        recourse / counterfactual generators).
    immutable:
        Whether the feature must never be changed by a counterfactual
        (e.g. race, birthplace).  ``immutable`` implies ``not actionable``.
    monotone:
        Optional direction constraint for recourse: ``+1`` means the feature
        may only be increased, ``-1`` only decreased, ``0`` unconstrained.
    lower, upper:
        Optional plausibility bounds on the feature value.
    categories:
        Category names for categorical features (index = code).
    """

    name: str
    kind: str = "numeric"
    actionable: bool = True
    immutable: bool = False
    monotone: int = 0
    lower: float | None = None
    upper: float | None = None
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "binary", "categorical"):
            raise ValidationError(f"unknown feature kind {self.kind!r}")
        if self.monotone not in (-1, 0, 1):
            raise ValidationError("monotone must be -1, 0 or +1")
        if self.immutable and self.actionable:
            object.__setattr__(self, "actionable", False)


@dataclass
class Dataset:
    """Tabular dataset with a sensitive attribute and a binary label.

    Attributes
    ----------
    X:
        Feature matrix, shape ``(n_samples, n_features)``, float.
    y:
        Binary labels (1 = favourable outcome).
    features:
        One :class:`FeatureSpec` per column of ``X``.
    sensitive:
        Name of the sensitive feature column; its values partition the data
        into groups (1 is conventionally the protected group).
    name:
        Human-readable dataset name.
    scm:
        Optional structural causal model the data was generated from
        (:class:`~fairexp.causal.scm.StructuralCausalModel`).  Datasets
        carrying one satisfy the registry's ``"scm"`` data requirement, so
        causal-recourse explainers auto-select for them; it travels through
        :meth:`subset` / :meth:`split` and friends.
    """

    X: np.ndarray
    y: np.ndarray
    features: list[FeatureSpec]
    sensitive: str
    name: str = "dataset"
    scm: object | None = None

    #: data modality advertised to ``ExplainerRegistry.is_compatible``
    modality = "tabular"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.y = np.asarray(self.y, dtype=int)
        if self.X.ndim != 2:
            raise ValidationError("X must be 2-dimensional")
        if self.y.shape[0] != self.X.shape[0]:
            raise ValidationError("X and y must have the same number of rows")
        if len(self.features) != self.X.shape[1]:
            raise ValidationError(
                f"{len(self.features)} feature specs for {self.X.shape[1]} columns"
            )
        if self.sensitive not in self.feature_names:
            raise ValidationError(f"sensitive feature {self.sensitive!r} not in columns")

    # ------------------------------------------------------------ accessors
    @property
    def feature_names(self) -> list[str]:
        """Names of the feature columns."""
        return [spec.name for spec in self.features]

    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns."""
        return int(self.X.shape[1])

    @property
    def sensitive_index(self) -> int:
        """Column index of the sensitive attribute."""
        return self.feature_names.index(self.sensitive)

    @property
    def sensitive_values(self) -> np.ndarray:
        """Values of the sensitive column (group membership)."""
        return self.X[:, self.sensitive_index].astype(int)

    @property
    def protected_mask(self) -> np.ndarray:
        """Boolean mask for the protected group (sensitive value == 1)."""
        return self.sensitive_values == 1

    def column(self, name: str) -> np.ndarray:
        """Return the values of the named feature column."""
        return self.X[:, self.index_of(name)]

    def index_of(self, name: str) -> int:
        """Return the column index of the named feature."""
        try:
            return self.feature_names.index(name)
        except ValueError:
            raise ValidationError(f"unknown feature {name!r}") from None

    def spec_of(self, name: str) -> FeatureSpec:
        """Return the :class:`FeatureSpec` of the named feature."""
        return self.features[self.index_of(name)]

    # --------------------------------------------------------- manipulation
    def subset(self, mask_or_indices) -> "Dataset":
        """Return a new dataset restricted to the given rows."""
        idx = np.asarray(mask_or_indices)
        return Dataset(
            X=self.X[idx].copy(),
            y=self.y[idx].copy(),
            features=list(self.features),
            sensitive=self.sensitive,
            name=self.name,
            scm=self.scm,
        )

    def drop_feature(self, name: str) -> "Dataset":
        """Return a new dataset without the named column.

        Dropping the sensitive attribute is allowed for *training* fairness-
        through-unawareness models (e.g. PreCoF implicit-bias analysis); the
        returned dataset re-labels the first remaining column as "sensitive"
        placeholder-free by keeping group membership in :attr:`groups_backup`.
        """
        if name == self.sensitive:
            raise ValidationError(
                "use features_without_sensitive() to obtain a matrix without the "
                "sensitive column; the Dataset always keeps group membership"
            )
        j = self.index_of(name)
        keep = [i for i in range(self.n_features) if i != j]
        return Dataset(
            X=self.X[:, keep].copy(),
            y=self.y.copy(),
            features=[self.features[i] for i in keep],
            sensitive=self.sensitive,
            name=self.name,
            scm=self.scm,
        )

    def features_without_sensitive(self) -> tuple[np.ndarray, list[FeatureSpec]]:
        """Return ``(X, specs)`` with the sensitive column removed.

        Group membership remains available through :attr:`sensitive_values`.
        """
        j = self.sensitive_index
        keep = [i for i in range(self.n_features) if i != j]
        return self.X[:, keep].copy(), [self.features[i] for i in keep]

    def with_values(self, X: np.ndarray | None = None, y: np.ndarray | None = None) -> "Dataset":
        """Return a copy with replaced feature matrix and/or labels."""
        return Dataset(
            X=self.X.copy() if X is None else np.asarray(X, dtype=float),
            y=self.y.copy() if y is None else np.asarray(y, dtype=int),
            features=list(self.features),
            sensitive=self.sensitive,
            name=self.name,
            scm=self.scm,
        )

    def split(self, test_size: float = 0.3, random_state=None) -> tuple["Dataset", "Dataset"]:
        """Split into train and test datasets, stratified on the label."""
        from ..models.preprocessing import train_test_split

        idx = np.arange(self.n_samples)
        train_idx, test_idx = train_test_split(
            idx, test_size=test_size, random_state=random_state, stratify=self.y
        )
        return self.subset(train_idx), self.subset(test_idx)

    # ------------------------------------------------------------ summaries
    def group_sizes(self) -> dict[int, int]:
        """Return the number of samples per sensitive-attribute value."""
        values, counts = np.unique(self.sensitive_values, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def base_rates(self) -> dict[int, float]:
        """Return ``P(y=1 | group)`` for each sensitive-attribute value."""
        rates = {}
        for value in np.unique(self.sensitive_values):
            mask = self.sensitive_values == value
            rates[int(value)] = float(self.y[mask].mean()) if mask.any() else 0.0
        return rates

    def describe(self) -> dict:
        """Return a summary dictionary (sizes, base rates, feature kinds)."""
        return {
            "name": self.name,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "sensitive": self.sensitive,
            "group_sizes": self.group_sizes(),
            "base_rates": self.base_rates(),
            "feature_kinds": {spec.name: spec.kind for spec in self.features},
        }

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n_samples={self.n_samples}, "
            f"n_features={self.n_features}, sensitive={self.sensitive!r})"
        )


def make_feature_specs(
    names: Sequence[str],
    *,
    kinds: Mapping[str, str] | None = None,
    immutable: Iterable[str] = (),
    non_actionable: Iterable[str] = (),
    bounds: Mapping[str, tuple[float, float]] | None = None,
    monotone: Mapping[str, int] | None = None,
) -> list[FeatureSpec]:
    """Convenience builder for lists of :class:`FeatureSpec`."""
    kinds = dict(kinds or {})
    bounds = dict(bounds or {})
    monotone = dict(monotone or {})
    immutable = set(immutable)
    non_actionable = set(non_actionable)
    specs = []
    for name in names:
        lower, upper = bounds.get(name, (None, None))
        specs.append(
            FeatureSpec(
                name=name,
                kind=kinds.get(name, "numeric"),
                actionable=name not in non_actionable and name not in immutable,
                immutable=name in immutable,
                monotone=monotone.get(name, 0),
                lower=lower,
                upper=upper,
            )
        )
    return specs
