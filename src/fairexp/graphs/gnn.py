"""A small graph convolutional network (GCN) for node classification, in numpy.

The model follows the standard two-layer GCN recipe: symmetric-normalized
adjacency with self-loops, ReLU hidden layer, sigmoid output, trained with
full-batch gradient descent.  It exposes the normalized adjacency and the
per-node computational graph so the structural-bias explainers in
:mod:`fairexp.graphs.explain` can perturb message-passing edges.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import NotFittedError, ValidationError
from ..utils import check_random_state, sigmoid
from .generators import AttributedGraph

__all__ = ["GCNClassifier", "normalized_adjacency"]


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric normalization with self-loops: ``D^-1/2 (A + I) D^-1/2``."""
    adjacency = np.asarray(adjacency, dtype=float)
    a_hat = adjacency + np.eye(adjacency.shape[0])
    degree = a_hat.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCNClassifier:
    """Two-layer GCN for binary node classification.

    Parameters
    ----------
    hidden_size:
        Width of the hidden layer.
    n_epochs, learning_rate, l2:
        Full-batch gradient descent hyper-parameters.
    """

    def __init__(
        self,
        hidden_size: int = 16,
        n_epochs: int = 200,
        learning_rate: float = 0.3,
        l2: float = 5e-4,
        random_state: int | None = 0,
    ) -> None:
        self.hidden_size = hidden_size
        self.n_epochs = n_epochs
        self.learning_rate = learning_rate
        self.l2 = l2
        self.random_state = random_state
        self.W1_: np.ndarray | None = None
        self.W2_: np.ndarray | None = None
        self.loss_curve_: list[float] = []

    # ------------------------------------------------------------- forward
    def _forward(self, a_norm: np.ndarray, X: np.ndarray):
        hidden_pre = a_norm @ X @ self.W1_
        hidden = np.maximum(hidden_pre, 0.0)
        logits = (a_norm @ hidden @ self.W2_).ravel()
        return hidden_pre, hidden, logits

    def fit(self, graph: AttributedGraph, train_mask: np.ndarray | None = None) -> "GCNClassifier":
        """Train on the graph's labelled nodes (all nodes unless ``train_mask`` is given)."""
        X = graph.features
        y = graph.labels.astype(float)
        n_nodes, n_features = X.shape
        if train_mask is None:
            train_mask = np.ones(n_nodes, dtype=bool)
        train_mask = np.asarray(train_mask, dtype=bool)
        if train_mask.shape[0] != n_nodes:
            raise ValidationError("train_mask must have one entry per node")

        rng = check_random_state(self.random_state)
        self.W1_ = rng.normal(scale=np.sqrt(2.0 / n_features), size=(n_features, self.hidden_size))
        self.W2_ = rng.normal(scale=np.sqrt(2.0 / self.hidden_size), size=(self.hidden_size, 1))
        a_norm = normalized_adjacency(graph.adjacency)
        self.loss_curve_ = []
        n_train = max(int(train_mask.sum()), 1)

        for _ in range(self.n_epochs):
            hidden_pre, hidden, logits = self._forward(a_norm, X)
            probabilities = sigmoid(logits)
            eps = 1e-12
            loss = -np.mean(
                y[train_mask] * np.log(probabilities[train_mask] + eps)
                + (1 - y[train_mask]) * np.log(1 - probabilities[train_mask] + eps)
            )
            self.loss_curve_.append(float(loss))

            error = np.zeros(n_nodes)
            error[train_mask] = (probabilities[train_mask] - y[train_mask]) / n_train
            grad_logits = a_norm.T @ error[:, None]          # (n, 1) w.r.t. (A H) W2 rows
            grad_W2 = hidden.T @ grad_logits + self.l2 * self.W2_
            grad_hidden = grad_logits @ self.W2_.T
            grad_hidden_pre = grad_hidden * (hidden_pre > 0)
            grad_W1 = (a_norm @ X).T @ grad_hidden_pre + self.l2 * self.W1_

            self.W1_ -= self.learning_rate * grad_W1
            self.W2_ -= self.learning_rate * grad_W2
        return self

    # ------------------------------------------------------------- predict
    def _check_fitted(self) -> None:
        if self.W1_ is None:
            raise NotFittedError("GCNClassifier is not fitted")

    def predict_proba(self, graph: AttributedGraph) -> np.ndarray:
        """Positive-class probability per node."""
        self._check_fitted()
        a_norm = normalized_adjacency(graph.adjacency)
        _, _, logits = self._forward(a_norm, graph.features)
        return sigmoid(logits)

    def predict(self, graph: AttributedGraph) -> np.ndarray:
        """Binary prediction per node."""
        return (self.predict_proba(graph) >= 0.5).astype(int)

    def accuracy(self, graph: AttributedGraph, mask: np.ndarray | None = None) -> float:
        """Label accuracy on ``graph``, optionally restricted to ``mask``."""
        predictions = self.predict(graph)
        labels = graph.labels
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            predictions, labels = predictions[mask], labels[mask]
        return float(np.mean(predictions == labels))

    def statistical_parity(self, graph: AttributedGraph) -> float:
        """P(ŷ=1 | protected) - P(ŷ=1 | reference) over the graph's nodes."""
        predictions = self.predict(graph).astype(float)
        protected = graph.groups == 1
        if protected.all() or (~protected).all():
            return 0.0
        return float(predictions[protected].mean() - predictions[~protected].mean())

    def soft_statistical_parity(self, graph: AttributedGraph) -> float:
        """Mean predicted-probability difference between the groups.

        The soft (probability-level) parity responds continuously to small
        perturbations of the graph, which the edge-level and node-level bias
        explainers rely on.
        """
        probabilities = self.predict_proba(graph)
        protected = graph.groups == 1
        if protected.all() or (~protected).all():
            return 0.0
        return float(probabilities[protected].mean() - probabilities[~protected].mean())
