"""Actionable recourse as interventions on a structural causal model.

Implements the causal-recourse view of Karimi et al. [65]: instead of
interpreting recourse as independent feature manipulations, an action is a
set of structural interventions ``A = do({X_i := a_i})``; applying ``A`` to an
individual yields the *structural counterfactual*
``x' = F_A(F^{-1}(x))`` (abduction–action–prediction), so downstream features
update according to their causal mechanisms.  The recourse problem is

    A* = argmin cost(A; x)  s.t.  f(x') != f(x),  x' plausible, A feasible.

The module also distinguishes *contrastive explanations* (what would need to
be different) from *consequential recommendations* (what to do), following
Karimi et al.'s survey [13]: the former is the independent-manipulation
counterfactual, the latter the SCM-intervention flipset computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from ..causal.scm import StructuralCausalModel
from ..exceptions import InfeasibleRecourseError, ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry

__all__ = ["Flipset", "RecourseResult", "CausalRecourseExplainer"]


@dataclass
class Flipset:
    """A minimal-cost set of interventions flipping the model's decision.

    Attributes
    ----------
    interventions:
        Mapping ``variable -> intervened value``.
    cost:
        Total cost of the interventions under the explainer's cost function.
    counterfactual:
        The resulting structural counterfactual (all variables, post-intervention).
    prediction:
        Model prediction at the structural counterfactual.
    """

    interventions: dict[str, float]
    cost: float
    counterfactual: dict[str, float]
    prediction: int

    def describe(self) -> str:
        """Human-readable rendering of the flip actions, one per feature."""
        changes = ", ".join(f"do({k} := {v:.4g})" for k, v in self.interventions.items())
        return f"{changes} (cost={self.cost:.3f})"


@dataclass
class RecourseResult:
    """Recourse for one individual: the best flipset plus runner-up candidates."""

    best: Flipset
    candidates: list[Flipset] = field(default_factory=list, repr=False)


@ExplainerRegistry.register("causal_recourse", capabilities=("fairness-explainer", "causal"),
                            data_requirements=("scm",), resource_requirements=("scm",))
class CausalRecourseExplainer:
    """Search for minimal-cost intervention sets (flipsets) over an SCM.

    Parameters
    ----------
    model:
        Classifier taking the SCM variables (in ``variable_order``) as features.
    scm:
        The structural causal model describing downstream effects of
        interventions.
    variable_order:
        Order in which the SCM variables map to the model's feature columns.
    actionable:
        Variables the individual can intervene on (immutable ones excluded).
    costs:
        Optional per-variable cost weight (default 1); the cost of an
        intervention is ``weight * |new - old| / scale``.
    scales:
        Per-variable normalization (e.g. population standard deviation).
    grid_size:
        Number of candidate values per intervened variable.
    max_intervention_size:
        Maximum number of simultaneously intervened variables.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model,
        scm: StructuralCausalModel,
        variable_order: Sequence[str],
        *,
        actionable: Sequence[str],
        costs: Mapping[str, float] | None = None,
        scales: Mapping[str, float] | None = None,
        value_ranges: Mapping[str, tuple[float, float]] | None = None,
        grid_size: int = 7,
        max_intervention_size: int = 2,
        target_class: int = 1,
    ) -> None:
        self.model = model
        self.scm = scm
        self.variable_order = list(variable_order)
        unknown = set(self.variable_order) - set(scm.variables)
        if unknown:
            raise ValidationError(f"variables not in the SCM: {sorted(unknown)}")
        self.actionable = [v for v in actionable if v in self.variable_order]
        if not self.actionable:
            raise ValidationError("at least one actionable variable is required")
        self.costs = dict(costs or {})
        self.scales = dict(scales or {})
        self.value_ranges = dict(value_ranges or {})
        self.grid_size = grid_size
        self.max_intervention_size = max_intervention_size
        self.target_class = target_class

    # ------------------------------------------------------------- helpers
    def _predict_observation(self, observation: Mapping[str, float]) -> int:
        row = np.asarray([[observation[v] for v in self.variable_order]])
        return int(np.asarray(self.model.predict(row))[0])

    def _candidate_values(self, variable: str, current: float) -> np.ndarray:
        low, high = self.value_ranges.get(variable, (current - 3 * self._scale(variable),
                                                     current + 3 * self._scale(variable)))
        return np.linspace(low, high, self.grid_size)

    def _scale(self, variable: str) -> float:
        return float(self.scales.get(variable, 1.0)) or 1.0

    def _cost(self, variable: str, old: float, new: float) -> float:
        weight = float(self.costs.get(variable, 1.0))
        return weight * abs(new - old) / self._scale(variable)

    def observation_from_row(self, x: np.ndarray) -> dict[str, float]:
        """Convert a feature row (in ``variable_order``) into an SCM observation."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != len(self.variable_order):
            raise ValidationError("row length does not match variable_order")
        return {v: float(x[i]) for i, v in enumerate(self.variable_order)}

    # ---------------------------------------------------------------- main
    def explain(self, x: np.ndarray, *, top_k: int = 3) -> RecourseResult:
        """Return the minimal-cost flipset for one individual (feature row)."""
        observation = self.observation_from_row(x)
        if self._predict_observation(observation) == self.target_class:
            raise ValidationError("the individual already receives the favourable outcome")

        candidates: list[Flipset] = []
        for size in range(1, self.max_intervention_size + 1):
            for variables in combinations(self.actionable, size):
                grids = [self._candidate_values(v, observation[v]) for v in variables]
                for values in _cartesian(grids):
                    interventions = dict(zip(variables, (float(v) for v in values)))
                    counterfactual = self.scm.counterfactual(observation, interventions)
                    prediction = self._predict_observation(counterfactual)
                    if prediction != self.target_class:
                        continue
                    cost = sum(
                        self._cost(v, observation[v], interventions[v]) for v in variables
                    )
                    candidates.append(
                        Flipset(
                            interventions=interventions,
                            cost=float(cost),
                            counterfactual=counterfactual,
                            prediction=prediction,
                        )
                    )
        if not candidates:
            raise InfeasibleRecourseError("no intervention set flips the prediction")
        candidates.sort(key=lambda f: f.cost)
        return RecourseResult(best=candidates[0], candidates=candidates[:top_k])

    def recourse_cost(self, x: np.ndarray) -> float:
        """Cost of the cheapest flipset for ``x`` (inf if infeasible)."""
        try:
            return self.explain(x).best.cost
        except InfeasibleRecourseError:
            return float("inf")

    def independent_manipulation_cost(self, x: np.ndarray) -> float:
        """Cost of recourse when actions are treated as independent feature changes.

        Downstream causal effects are ignored: intervened values are written
        into the feature row directly without propagating through the SCM.
        This is the "contrastive explanation" baseline that the causal flipset
        is compared against (E6 in DESIGN.md).
        """
        observation = self.observation_from_row(x)
        best_cost = float("inf")
        for size in range(1, self.max_intervention_size + 1):
            for variables in combinations(self.actionable, size):
                grids = [self._candidate_values(v, observation[v]) for v in variables]
                for values in _cartesian(grids):
                    modified = dict(observation)
                    cost = 0.0
                    for variable, value in zip(variables, values):
                        modified[variable] = float(value)
                        cost += self._cost(variable, observation[variable], float(value))
                    if self._predict_observation(modified) == self.target_class:
                        best_cost = min(best_cost, cost)
        return best_cost


def _cartesian(grids: list[np.ndarray]):
    """Iterate over the cartesian product of several value grids."""
    if not grids:
        yield ()
        return
    head, *tail = grids
    for value in head:
        for rest in _cartesian(tail):
            yield (value, *rest)
