"""Common explanation containers and the explainer taxonomy metadata.

Every explainer in :mod:`fairexp.explanations` and :mod:`fairexp.core`
declares where it sits in the explanation taxonomy of the paper (Figure 2)
through :class:`ExplainerInfo`; the Table I / Figure 2 regeneration benches
read this metadata straight from the implemented classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "ExplainerInfo",
    "FeatureAttribution",
    "Counterfactual",
    "RuleExplanation",
    "ExampleExplanation",
]


@dataclass(frozen=True)
class ExplainerInfo:
    """Position of an explanation method in the taxonomy of Figure 2.

    Attributes
    ----------
    stage:
        ``"intrinsic"``, ``"data"`` or ``"post-hoc"``.
    access:
        ``"black-box"``, ``"gradient"`` or ``"white-box"``.
    agnostic:
        Whether the method applies to any model (model-agnostic).
    coverage:
        ``"local"``, ``"global"`` or ``"both"``.
    explanation_type:
        ``"feature"``, ``"example"`` or ``"approximation"``.
    multiplicity:
        ``"single"`` or ``"multiple"``.
    """

    stage: str = "post-hoc"
    access: str = "black-box"
    agnostic: bool = True
    coverage: str = "local"
    explanation_type: str = "feature"
    multiplicity: str = "single"


@dataclass
class FeatureAttribution:
    """Per-feature importance scores for one prediction or for the whole model.

    Attributes
    ----------
    feature_names:
        Names aligned with :attr:`values`.
    values:
        Attribution value per feature (sign carries direction where defined).
    baseline:
        The value the attributions are measured against (e.g. expected model
        output for Shapley values).
    meta:
        Free-form extra information (e.g. sampling error estimates).
    """

    feature_names: list[str]
    values: np.ndarray
    baseline: float = 0.0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)

    def as_dict(self) -> dict[str, float]:
        return {name: float(v) for name, v in zip(self.feature_names, self.values)}

    def top(self, k: int = 3) -> list[tuple[str, float]]:
        """Return the ``k`` features with the largest absolute attribution."""
        order = np.argsort(-np.abs(self.values))[:k]
        return [(self.feature_names[i], float(self.values[i])) for i in order]

    def total(self) -> float:
        return float(self.values.sum())


@dataclass
class Counterfactual:
    """A counterfactual explanation ``x -> x'`` for a single instance.

    Attributes
    ----------
    original:
        The explainee data point.
    counterfactual:
        The modified data point achieving the target outcome.
    original_prediction, counterfactual_prediction:
        Model outputs before and after.
    changed_features:
        Indices of features whose value changed.
    distance:
        Distance between original and counterfactual under the generator's
        cost metric.
    feasible:
        Whether the counterfactual respects actionability constraints.
    """

    original: np.ndarray
    counterfactual: np.ndarray
    original_prediction: int
    counterfactual_prediction: int
    changed_features: tuple[int, ...]
    distance: float
    feasible: bool = True
    meta: dict = field(default_factory=dict)

    def delta(self) -> np.ndarray:
        """Feature-wise change vector ``x' - x``."""
        return np.asarray(self.counterfactual, dtype=float) - np.asarray(self.original, dtype=float)

    def sparsity(self) -> int:
        """Number of features changed."""
        return len(self.changed_features)

    def describe(self, feature_names: Sequence[str] | None = None) -> list[str]:
        """Human-readable list of the feature changes."""
        original = np.asarray(self.original, dtype=float)
        counterfactual = np.asarray(self.counterfactual, dtype=float)
        lines = []
        for j in self.changed_features:
            name = feature_names[j] if feature_names is not None else f"x{j}"
            lines.append(f"{name}: {original[j]:.4g} -> {counterfactual[j]:.4g}")
        return lines


@dataclass
class RuleExplanation:
    """A conjunctive rule (anchor / itemset-style explanation).

    Attributes
    ----------
    conditions:
        Mapping ``feature name -> (low, high)`` interval or set of values.
    prediction:
        The outcome the rule is associated with.
    coverage:
        Fraction of the reference population satisfying the rule.
    precision:
        Fraction of covered points for which the model output matches
        ``prediction``.
    """

    conditions: Mapping[str, tuple]
    prediction: int
    coverage: float
    precision: float
    meta: dict = field(default_factory=dict)

    def __str__(self) -> str:
        clauses = []
        for name, bounds in self.conditions.items():
            low, high = bounds
            if low is not None and high is not None:
                clauses.append(f"{low:.4g} <= {name} <= {high:.4g}")
            elif low is not None:
                clauses.append(f"{name} >= {low:.4g}")
            elif high is not None:
                clauses.append(f"{name} <= {high:.4g}")
        premise = " AND ".join(clauses) if clauses else "TRUE"
        return (
            f"IF {premise} THEN prediction={self.prediction} "
            f"(coverage={self.coverage:.2f}, precision={self.precision:.2f})"
        )


@dataclass
class ExampleExplanation:
    """Example-based explanation: indices of reference instances and their roles."""

    indices: tuple[int, ...]
    role: str  # "prototype", "criticism", "neighbor", "influential"
    scores: np.ndarray | None = None
    meta: dict = field(default_factory=dict)
