"""Recourse audit of a loan-approval model.

Covers the counterfactual/recourse family of fairness explanations:

1. a shared-pass audit session: burden + NAWB + PreCoF through ONE
   store-backed `AuditSession`, so the population's counterfactual matrix is
   computed once, every audit reads from it, and a *second* (warm) sweep is
   served entirely from the persistent store — zero engine passes, as a
   repeated run in a fresh process would be,
2. individual counterfactuals with actionability constraints,
3. group counterfactual summaries (GLOBE-CE direction, counterfactual
   explanation tree, two-level recourse set),
4. actionable recourse as SCM interventions (flipsets) and the fair-causal-
   recourse audit,
5. mitigation: retraining with the recourse-equalizing objective.

Run with:  python examples/loan_recourse_audit.py
"""

import tempfile
import time

import numpy as np

from fairexp.core import (
    BurdenExplainer,
    CausalRecourseExplainer,
    CounterfactualExplanationTree,
    FACTSExplainer,
    GlobeCEExplainer,
    NAWBExplainer,
    PreCoFExplainer,
    RecourseSetExplainer,
    causal_recourse_fairness,
    recourse_gap_report,
)
from fairexp.datasets import make_loan_dataset, make_scm_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    CounterfactualEngine,
    GrowingSpheresCounterfactual,
)
from fairexp.fairness.mitigation import RecourseRegularizedClassifier
from fairexp.models import LogisticRegression


def shared_pass_audit(dataset, train, test, model, store_dir) -> None:
    print("== 1. Shared-pass audit session (store-backed; burden + NAWB + PreCoF)")
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    subset = test.subset(np.arange(min(120, test.n_samples)))

    def sweep():
        """One full sweep through a fresh session, as a new process would run it."""
        generator = GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                                 random_state=0)
        # The session owns one counting adapter; n_jobs shards the search
        # across workers with bitwise-identical results, and the store
        # persists each population's matrix across sessions/processes.
        session = AuditSession(generator, n_jobs=2, store=store_dir)
        start = time.perf_counter()
        burden = BurdenExplainer(session=session).explain(subset.X,
                                                          subset.sensitive_values)
        nawb = NAWBExplainer(session=session).explain(subset.X, subset.y,
                                                      subset.sensitive_values)
        precof = PreCoFExplainer(feature_names=dataset.feature_names,
                                 sensitive_feature=dataset.sensitive,
                                 session=session).explain(subset.X,
                                                          subset.sensitive_values)
        return time.perf_counter() - start, session, burden, nawb, precof

    cold_time, cold_session, burden, nawb, precof = sweep()
    print(f"   burden gap  = {burden.gap:+.3f}  (protected pays more when positive)")
    print(f"   NAWB gap    = {nawb.gap:+.3f}")
    print(f"   PreCoF top protected change: {precof.protected_profile.top_changed(1)}")
    stats = cold_session.stats()
    print(f"   cold sweep: {cold_time * 1000:7.1f} ms — "
          f"{stats['engine_predict_calls']} engine predict calls, reused "
          f"{stats['n_results_reused']} results across audits, "
          f"{stats['predict_cache_hits']} prediction cache hits")

    warm_time, warm_session, *_ = sweep()
    warm_stats = warm_session.stats()
    print(f"   warm sweep: {warm_time * 1000:7.1f} ms — "
          f"{warm_stats['engine_predict_calls']} engine predict calls, "
          f"{warm_stats['store_row_hits']} rows served from the persistent store "
          f"({cold_time / max(warm_time, 1e-9):.1f}x faster)")
    print()


def individual_counterfactuals(dataset, train, test, model) -> None:
    print("== 2. Individual counterfactuals (with actionability constraints)")
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    generator = GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                             random_state=0)
    engine = CounterfactualEngine(generator)
    rejected = test.X[model.predict(test.X) == 0]
    for counterfactual in engine.generate_aligned(rejected[:3]):
        if counterfactual is None:  # no feasible recourse within the search budget
            print("   no feasible counterfactual")
            continue
        changes = "; ".join(counterfactual.describe(dataset.feature_names))
        print(f"   cost={counterfactual.distance:.2f}  {changes}")
    print(f"   (audit took {engine.predict_call_count} batched model.predict calls)")
    print()


def group_counterfactuals(dataset, train, test, model) -> None:
    print("== 3. Group counterfactual summaries")
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    globe = GlobeCEExplainer(model, train.X, constraints=constraints,
                             feature_names=dataset.feature_names, random_state=0).explain(
        test.X, test.sensitive_values
    )
    print(f"   GLOBE-CE direction: {globe.direction.top_components(3)}")
    print(f"   mean scaling cost  protected={globe.protected.mean_cost:.2f} "
          f"reference={globe.reference.mean_cost:.2f} (gap {globe.cost_gap:+.2f})")

    facts = FACTSExplainer(model, dataset.feature_names, dataset.sensitive_index,
                           random_state=0)
    actions = facts._candidate_actions(train.X, model.predict(train.X))
    tree = CounterfactualExplanationTree(model, actions, feature_names=dataset.feature_names,
                                         max_depth=2).fit(test.X)
    print("   counterfactual explanation tree:")
    for line in tree.describe():
        print(f"     {line}")
    recourse_set = RecourseSetExplainer(model, actions, feature_names=dataset.feature_names,
                                        sensitive_index=dataset.sensitive_index).explain(
        test.X, test.sensitive_values
    )
    print("   two-level recourse set:")
    for line in recourse_set.describe():
        print(f"     {line}")
    print()


def causal_recourse() -> None:
    print("== 4. Actionable recourse over a structural causal model")
    dataset, scm = make_scm_loan_dataset(800, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    explainer = CausalRecourseExplainer(
        model, scm, dataset.feature_names,
        actionable=["education", "income", "savings"],
        scales={"education": 2.0, "income": 10.0, "savings": 5.0},
        value_ranges={"education": (4, 20), "income": (5, 200), "savings": (0, 100)},
    )
    rejected = test.X[model.predict(test.X) == 0]
    result = explainer.explain(rejected[0])
    print(f"   cheapest flipset: {result.best.describe()}")
    print(f"   independent-manipulation cost for the same person: "
          f"{explainer.independent_manipulation_cost(rejected[0]):.3f}")
    audit = causal_recourse_fairness(explainer, scm, test.X, sensitive_variable="group",
                                     max_individuals=10, random_state=0)
    print(f"   fair causal recourse audit: mean |cost difference| = {audit.mean_unfairness:.2f}, "
          f"{audit.fraction_disadvantaged:.0%} of individuals pay more than their "
          f"counterfactual self\n")


def mitigation(dataset, train, test, model) -> None:
    print("== 5. Mitigation: recourse-equalizing training")
    base_gap = recourse_gap_report(model, test.X, test.sensitive_values)
    regularized = RecourseRegularizedClassifier(recourse_weight=3.0, n_iter=1500,
                                                random_state=0).fit(
        train.X, train.y, sensitive=train.sensitive_values
    )
    new_gap = recourse_gap_report(regularized, test.X, test.sensitive_values)
    print(f"   group recourse gap: {base_gap.gap:+.3f} -> {new_gap.gap:+.3f}")
    print(f"   accuracy:           {model.score(test.X, test.y):.3f} -> "
          f"{regularized.score(test.X, test.y):.3f}")


def main() -> None:
    dataset = make_loan_dataset(1000, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1500, random_state=0).fit(train.X, train.y)
    print(f"loan model accuracy: {model.score(test.X, test.y):.3f}\n")

    with tempfile.TemporaryDirectory() as store_dir:
        shared_pass_audit(dataset, train, test, model, store_dir)
    individual_counterfactuals(dataset, train, test, model)
    group_counterfactuals(dataset, train, test, model)
    causal_recourse()
    mitigation(dataset, train, test, model)


if __name__ == "__main__":
    main()
