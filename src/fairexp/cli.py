"""Command-line interface: ``python -m fairexp``.

Five command families:

``python -m fairexp store {inspect,evict,clear}``
    Operational tooling for the cross-process
    :class:`~fairexp.explanations.store.CounterfactualStore` — list entry
    fingerprints/ages/sizes, discard entries by prefix or LRU bounds, or
    clear the directory.  The store directory resolves from ``--dir`` or
    the ``FAIREXP_STORE_DIR`` environment variable — the same variable the
    experiment runners opt in with, so the CLI inspects exactly what a
    sweep would warm-start from.

``python -m fairexp serve --graph A.npz [--graph B.npz | --graph-dir DIR]``
    Run the loopback scoring server over one or more exported
    :class:`~fairexp.explanations.serving.ComputeGraph` archives (written
    by ``ComputeGraph.save``).  Several ``--graph`` flags (or a
    ``--graph-dir`` of ``.npz`` archives) load a model *fleet* into one
    server: requests route by graph content hash.  ``--max-inflight``
    bounds concurrently admitted batches (overload sheds with ``429``
    instead of queueing without bound).  The serving process needs only
    the graph files — never the training classes — and prints one
    ``serving ... on URL`` first line so launchers (CI,
    ``benchmarks/serving_workload.py``) can connect a
    :class:`~fairexp.explanations.serving.RemoteScoringBackend` to it,
    followed by one ``<hash>  <source>`` line per hosted graph.
    ``fairexp serve --stats-url URL`` instead queries a *running* server's
    ``/stats`` endpoint and pretty-prints the global and per-graph
    counters (requests, rows, sheds, coalescing factor, window).

``python -m fairexp run EXPERIMENT [--backend {numpy,onnx,remote}]``
    Run one experiment (``E1/E2`` … ``E14``, ``FIG1``/``FIG2``/``TAB1``)
    and print its result dictionary as JSON.  The experiment list is
    *derived* from the :class:`~fairexp.sweep.SweepRegistry` — a new spec
    is immediately runnable here, there is no second list to update.  For
    the counterfactual-heavy runners (E1–E9) ``--backend`` selects where
    predict batches run: in-process NumPy, the exported ONNX-style graph,
    or a loopback remote scoring server spun up for the run.

``python -m fairexp sweep {plan,run,resume}``
    Declarative sweep orchestration over the registered
    :class:`~fairexp.sweep.SweepSpec` s.  ``plan`` crosses the selected
    specs' factors and prints the emitted/pruned cell partition (with the
    reason each pruned cell was dropped) without executing anything;
    ``run`` executes the emitted cells (``--store DIR`` attaches the
    persistent counterfactual store + journal, ``--jobs N`` distributes
    cells over an executor pool, ``--bench PATH`` appends the sweep's
    accounting to a ``BENCH_SWEEP.json``-style trajectory); ``resume``
    re-enters a journaled sweep — already-completed cells replay against
    the warm store at zero engine predict calls and their metrics are
    verified against the journal.  ``--where factor=label[,label...]``
    restricts factors; ``--set key=value`` overrides runner arguments
    (values parse as JSON, falling back to strings).

``python -m fairexp lint [PATHS]``
    Run the repo's own static-analysis rules (FX001–FX008: executor,
    randomness, counter-lock and fingerprint-coverage discipline — see
    :mod:`fairexp.lint` and ``docs/api/lint.md``) over ``src`` or the
    given paths.  ``--json`` emits the machine-readable report,
    ``--baseline write/check`` grandfathers/enforces a
    ``LINT_BASELINE.json`` debt file, and the exit code is 1 whenever a
    fresh (non-baselined, non-``noqa``) finding survives.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .explanations.store import CounterfactualStore

__all__ = ["main"]


def _resolve_store(directory: str | None) -> CounterfactualStore:
    """Store rooted at ``--dir`` or ``$FAIREXP_STORE_DIR`` (required).

    The directory must already exist: the CLI is an inspection/maintenance
    surface, and silently creating a typo'd path would report a fresh
    "empty store" instead of the error the operator needs.
    """
    resolved = (directory or os.environ.get("FAIREXP_STORE_DIR", "")).strip()
    if not resolved:
        raise SystemExit(
            "no store directory: pass --dir or set FAIREXP_STORE_DIR"
        )
    if not os.path.isdir(resolved):
        raise SystemExit(f"store directory does not exist: {resolved}")
    return CounterfactualStore(resolved)


def _format_age(seconds: float) -> str:
    """Human-readable age: seconds, minutes, hours or days."""
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    if seconds < 86400:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = _resolve_store(args.dir)
    details = store.entry_details()
    if args.json:
        print(json.dumps({"directory": str(store.directory), "entries": details},
                         indent=2))
        return 0
    if not details:
        print(f"{store.directory}: empty store")
        return 0
    print(f"{store.directory}: {len(details)} entries, "
          f"{sum(d['bytes'] for d in details)} bytes (oldest first)")
    print(f"{'FINGERPRINT':<16} {'ROWS':>6} {'BYTES':>10} {'AGE':>6} "
          f"{'FMT':>3}  UPDATED")
    for entry in details:
        print(f"{entry['fingerprint'][:16]:<16} {entry['n_rows']:>6} "
              f"{entry['bytes']:>10} {_format_age(entry['age_seconds']):>6} "
              f"{str(entry['format_version']):>3}  {entry['updated_at']}")
    return 0


def _cmd_evict(args: argparse.Namespace) -> int:
    if args.fingerprint is None and args.max_entries is None and args.max_bytes is None:
        raise SystemExit(
            "evict needs --fingerprint, --max-entries and/or --max-bytes"
        )
    store = _resolve_store(args.dir)
    try:
        removed = store.evict(fingerprint=args.fingerprint,
                              max_entries=args.max_entries,
                              max_bytes=args.max_bytes)
    except ValueError as error:  # ambiguous fingerprint prefix
        raise SystemExit(str(error)) from None
    print(f"evicted {removed} entries from {store.directory}")
    return 0


def _cmd_clear(args: argparse.Namespace) -> int:
    store = _resolve_store(args.dir)
    n_entries = len(store.entries())
    store.clear()
    print(f"cleared {n_entries} entries from {store.directory}")
    return 0


def _print_server_stats(url: str) -> int:
    """Fetch a running server's ``/stats`` and pretty-print the counters."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(f"{url.rstrip('/')}/stats", timeout=10) as reply:
            stats = json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, ValueError) as error:
        raise SystemExit(f"could not fetch stats from {url}: {error}") from None
    limit = stats.get("max_inflight")
    print(f"{url}: {stats.get('requests', 0)} requests, "
          f"{stats.get('rows', 0)} rows, {stats.get('shed', 0)} shed, "
          f"{stats.get('inflight', 0)} in flight "
          f"(peak {stats.get('peak_inflight', 0)}, "
          f"limit {'none' if limit is None else limit})")
    graphs = stats.get("graphs", {})
    if graphs:
        print(f"{'GRAPH':<14} {'SOURCE':<24} {'REQS':>6} {'ROWS':>8} "
              f"{'SHED':>5} {'COALESCE':>8} {'WINDOW':>8}")
        for key, entry in graphs.items():
            factor = entry.get("coalescing_factor")
            window = entry.get("window")
            print(f"{key[:12]:<14} {str(entry.get('source', '?'))[:24]:<24} "
                  f"{entry.get('requests', 0):>6} {entry.get('rows', 0):>8} "
                  f"{entry.get('shed', 0):>5} "
                  f"{'-' if factor is None else format(factor, '.2f'):>8} "
                  f"{'-' if window is None else format(window, '.4f'):>8}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the store commands must stay usable in minimal
    # environments, and serve pulls in the HTTP server machinery.
    from .explanations.serving import ComputeGraph, ScoringServer

    if args.stats_url:
        return _print_server_stats(args.stats_url)
    paths = list(args.graph or [])
    if args.graph_dir:
        if not os.path.isdir(args.graph_dir):
            raise SystemExit(f"graph directory does not exist: {args.graph_dir}")
        paths.extend(sorted(
            os.path.join(args.graph_dir, name)
            for name in os.listdir(args.graph_dir) if name.endswith(".npz")
        ))
    if not paths:
        raise SystemExit("serve needs --graph, --graph-dir or --stats-url")
    for path in paths:
        if not os.path.isfile(path):
            raise SystemExit(f"graph archive does not exist: {path}")
    graphs = [ComputeGraph.load(path) for path in paths]
    server = ScoringServer(graphs, host=args.host, port=args.port,
                           max_inflight=args.max_inflight)
    # One parseable first line, flushed before blocking: launchers (CI
    # scripts, benchmarks/serving_workload.py) read it to discover the
    # bound port.  Per-graph hash lines follow so fleet clients can route.
    if len(graphs) == 1:
        print(f"serving {graphs[0].source} ({graphs[0].n_features} features) "
              f"on {server.url}", flush=True)
    else:
        print(f"serving {len(graphs)} graphs on {server.url}", flush=True)
    for key, graph in zip(server.graph_keys(), graphs):
        print(f"  {key}  {graph.source} ({graph.n_features} features)",
              flush=True)
    try:
        server.serve_until_interrupted()
    finally:
        server.close()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .exceptions import ValidationError
    from .sweep import SweepRegistry

    try:
        spec = SweepRegistry.get(args.experiment)
    except KeyError:
        known = ", ".join(SweepRegistry.ids())
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; one of: {known}"
        ) from None
    where = None
    if spec.factor("backend") is not None:
        where = {"backend": [args.backend]}
    elif args.backend != "numpy":
        raise SystemExit(
            f"experiment {args.experiment} does not route predicts through a "
            "session backend; only --backend numpy applies"
        )
    try:
        cell = spec.cell(where=where)
    except ValidationError as error:
        raise SystemExit(str(error)) from None
    results = spec.runner(**cell.params())
    results.pop("rendered", None)
    print(json.dumps(results, indent=2, default=str))
    return 0


def _parse_where(pairs: list[str] | None) -> dict[str, list[str]]:
    """``--where factor=label[,label...]`` flags into a restriction mapping."""
    where: dict[str, list[str]] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--where expects factor=label, got {pair!r}")
        factor, _, labels = pair.partition("=")
        where.setdefault(factor.strip(), []).extend(
            label.strip() for label in labels.split(",") if label.strip()
        )
    return where


def _parse_overrides(pairs: list[str] | None) -> dict[str, object]:
    """``--set key=value`` flags into runner overrides (values parse as JSON,
    falling back to plain strings so ``--set schedule=adaptive`` just works)."""
    overrides: dict[str, object] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--set expects key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        try:
            overrides[key.strip()] = json.loads(raw)
        except ValueError:
            overrides[key.strip()] = raw
    return overrides


def _sweep_selection(args: argparse.Namespace):
    specs = args.spec or None
    return specs, _parse_where(args.where), _parse_overrides(args.set) or None


def _append_bench_point(path: str, point: dict) -> None:
    """Append one sweep record to a JSON-list trajectory file (the same
    append-only shape ``benchmarks/conftest.py`` writes for BENCH_*.json)."""
    try:
        with open(path, encoding="utf-8") as handle:
            history = json.load(handle)
        if not isinstance(history, list):
            history = []
    except (OSError, ValueError):
        history = []
    history.append(point)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def _cmd_sweep_plan(args: argparse.Namespace) -> int:
    from .exceptions import ValidationError
    from .sweep import sweep_plan

    specs, where, overrides = _sweep_selection(args)
    try:
        plan = sweep_plan(specs, where=where, overrides=overrides)
    except ValidationError as error:
        raise SystemExit(str(error)) from None
    if args.json:
        print(json.dumps({
            "summary": plan.summary(),
            "emitted": [cell.cell_id for cell in plan.emitted],
            "pruned": [{"cell_id": cell.cell_id, "reasons": list(cell.reasons)}
                       for cell in plan.pruned],
        }, indent=2))
        return 0
    summary = plan.summary()
    print(f"{summary['raw_cells']} raw cells -> {summary['emitted_cells']} emitted, "
          f"{summary['pruned_cells']} pruned")
    for cell in plan.emitted:
        print(f"  run   {cell.cell_id}")
    for cell in plan.pruned:
        print(f"  prune {cell.cell_id}")
        for reason in cell.reasons:
            print(f"        - {reason}")
    return 0


def _run_sweep_command(args: argparse.Namespace, *, resume: bool) -> int:
    from .exceptions import ValidationError
    from .sweep import run_sweep

    specs, where, overrides = _sweep_selection(args)
    try:
        result = run_sweep(specs, where=where, overrides=overrides,
                           store=args.store, journal=args.journal,
                           jobs=args.jobs, resume=resume)
    except ValidationError as error:
        raise SystemExit(str(error)) from None
    if args.bench:
        _append_bench_point(args.bench, result.bench_point())
    if args.json:
        print(json.dumps(result.to_json(), indent=2, default=str))
        return 0
    summary = result.summary()
    print(f"{summary['emitted_cells']} cells in {summary['wall_time_seconds']:.2f}s "
          f"({summary['pruned_cells']} pruned, {summary['replayed_cells']} replayed, "
          f"{summary['diverged_cells']} diverged); "
          f"{summary['engine_predict_calls']} engine predict calls, "
          f"{summary['store_row_hits']} store row hits")
    for cell in result.cells:
        marker = {"completed": "ok", "diverged": "DIVERGED"}[cell.status]
        replay = " (replayed)" if cell.replayed else ""
        print(f"  {marker:<8} {cell.cell_id}  "
              f"{cell.wall_time_seconds:.2f}s  "
              f"engine_predicts={cell.stats.get('engine_predict_calls', 0)}"
              f"{replay}")
    return 1 if summary["diverged_cells"] else 0


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    return _run_sweep_command(args, resume=False)


def _cmd_sweep_resume(args: argparse.Namespace) -> int:
    return _run_sweep_command(args, resume=True)


def _cmd_lint(args: argparse.Namespace) -> int:
    from fairexp.lint import Baseline, lint_paths

    report = lint_paths(args.paths)
    baseline_path = args.baseline_file
    if args.baseline == "write":
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"baseline written: {baseline_path} "
              f"({len(report.findings)} findings grandfathered)")
        return 0
    if args.baseline == "check":
        baseline = Baseline.load(baseline_path)
    else:
        baseline = Baseline()
    fresh = baseline.fresh(report.findings)
    if args.json:
        payload = report.to_json(fresh)
        payload["baseline_size"] = len(baseline)
        print(json.dumps(payload, indent=2))
    else:
        for finding in fresh:
            print(finding.render())
        grandfathered = len(report.findings) - len(fresh)
        summary = (f"{report.files} files, {len(fresh)} fresh findings, "
                   f"{grandfathered} baselined, {report.suppressed} suppressed")
        print(summary)
    return 1 if fresh else 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fairexp",
        description="fairexp operational tooling (currently: the counterfactual store)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    store_parser = commands.add_parser(
        "store", help="inspect / evict / clear the persistent counterfactual store"
    )
    actions = store_parser.add_subparsers(dest="action", required=True)

    def add_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--dir", default=None,
            help="store directory (default: $FAIREXP_STORE_DIR)",
        )

    inspect_parser = actions.add_parser(
        "inspect", help="list entry fingerprints, ages and sizes"
    )
    add_dir(inspect_parser)
    inspect_parser.add_argument("--json", action="store_true",
                                help="emit machine-readable JSON")
    inspect_parser.set_defaults(func=_cmd_inspect)

    evict_parser = actions.add_parser(
        "evict", help="discard entries by fingerprint prefix or LRU bounds"
    )
    add_dir(evict_parser)
    evict_parser.add_argument("--fingerprint", default=None,
                              help="fingerprint (or unambiguous prefix) to discard")
    evict_parser.add_argument("--max-entries", type=int, default=None,
                              help="evict oldest entries beyond this count")
    evict_parser.add_argument("--max-bytes", type=int, default=None,
                              help="evict oldest entries beyond this total size")
    evict_parser.set_defaults(func=_cmd_evict)

    clear_parser = actions.add_parser("clear", help="remove every entry")
    add_dir(clear_parser)
    clear_parser.set_defaults(func=_cmd_clear)

    serve_parser = commands.add_parser(
        "serve", help="serve exported compute graphs over loopback HTTP"
    )
    serve_parser.add_argument("--graph", action="append", default=None,
                              help="ComputeGraph .npz archive (repeat to host "
                                   "a fleet routed by content hash)")
    serve_parser.add_argument("--graph-dir", default=None,
                              help="directory whose .npz archives are all "
                                   "loaded into the fleet")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: loopback only)")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="port to bind (default: an ephemeral port)")
    serve_parser.add_argument("--max-inflight", type=int, default=None,
                              help="admission limit: concurrent batches beyond "
                                   "this are shed with 429 (default: unbounded)")
    serve_parser.add_argument("--stats-url", default=None,
                              help="query a RUNNING server's /stats and "
                                   "pretty-print it instead of serving")
    serve_parser.set_defaults(func=_cmd_serve)

    run_parser = commands.add_parser(
        "run", help="run one experiment and print its results as JSON"
    )
    run_parser.add_argument("experiment",
                            help="experiment id (E1/E2, E3, ..., FIG1, TAB1)")
    run_parser.add_argument("--backend", choices=("numpy", "onnx", "remote"),
                            default="numpy",
                            help="predict dispatch for E1-E9 sessions "
                                 "(default: in-process numpy)")
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = commands.add_parser(
        "sweep", help="plan / run / resume declarative factorial sweeps"
    )
    sweep_actions = sweep_parser.add_subparsers(dest="action", required=True)

    def add_selection(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--spec", action="append", default=None,
                               metavar="ID",
                               help="experiment spec to include (repeatable; "
                                    "default: every registered spec)")
        subparser.add_argument("--where", action="append", default=None,
                               metavar="FACTOR=LABEL[,LABEL...]",
                               help="restrict a factor to these levels "
                                    "(repeatable; ignored by specs lacking "
                                    "the factor)")
        subparser.add_argument("--set", action="append", default=None,
                               metavar="KEY=VALUE",
                               help="override a runner argument for every "
                                    "cell (value parsed as JSON, else string)")
        subparser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON")

    plan_parser = sweep_actions.add_parser(
        "plan", help="show the emitted/pruned cell partition without running"
    )
    add_selection(plan_parser)
    plan_parser.set_defaults(func=_cmd_sweep_plan)

    def add_execution(subparser: argparse.ArgumentParser) -> None:
        add_selection(subparser)
        subparser.add_argument("--store", default=None, metavar="DIR",
                               help="persistent counterfactual store directory "
                                    "(default: $FAIREXP_STORE_DIR); the sweep "
                                    "journal lives next to it")
        subparser.add_argument("--journal", default=None, metavar="PATH",
                               help="journal file (default: SWEEP_JOURNAL.json "
                                    "inside the store directory)")
        subparser.add_argument("--jobs", type=int, default=1,
                               help="cells to execute concurrently over an "
                                    "executor pool (default: 1, sequential)")
        subparser.add_argument("--bench", default=None, metavar="PATH",
                               help="append the sweep's accounting to this "
                                    "JSON trajectory (BENCH_SWEEP.json style)")

    sweep_run_parser = sweep_actions.add_parser(
        "run", help="execute the emitted cells (fresh journal)"
    )
    add_execution(sweep_run_parser)
    sweep_run_parser.set_defaults(func=_cmd_sweep_run)

    resume_parser = sweep_actions.add_parser(
        "resume", help="re-enter a journaled sweep; completed cells replay "
                       "warm at zero engine predict calls"
    )
    add_execution(resume_parser)
    resume_parser.set_defaults(func=_cmd_sweep_resume)

    lint_parser = commands.add_parser(
        "lint", help="check the FX001-FX008 invariant rules "
                     "(see docs/api/lint.md); exits 1 on fresh findings"
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directory trees to lint (default: src)")
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit the full report (findings, fresh subset, counts) as JSON")
    lint_parser.add_argument(
        "--baseline", choices=("check", "write"),
        help="'check': only findings beyond the baseline file fail; "
             "'write': grandfather every current finding into it")
    lint_parser.add_argument(
        "--baseline-file", default="LINT_BASELINE.json",
        help="baseline path (default: LINT_BASELINE.json)")
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m fairexp``; returns the process exit code."""
    args = _build_parser().parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)
