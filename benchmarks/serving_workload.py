"""CI smoke for the out-of-process serving path — importable and runnable.

Not a test module.  Where ``benchmarks/test_bench_serving.py`` runs the
scoring server on an in-process thread, this script exercises the REAL
deployment shape: it exports the E1 loan model's compute graph to an
``.npz`` archive, launches ``python -m fairexp serve --graph …`` as a
separate process (which therefore scores without ever importing the
training classes it doesn't have in memory), and asserts over the loopback
wire that

* remote predictions are **bitwise-equal** to in-process ``model.predict``;
* 4 concurrent callers sharing one coalescing client issue **strictly
  fewer** wire calls than their 4 sequential independent counterparts,
  with per-caller row accounting intact.

As a script it prints one JSON object with the parity/coalescing numbers
and appends the same point to ``BENCH_SERVING.json`` next to the
benchmark's trajectory (CI uploads the artifact directory).  Loopback
only: the server binds 127.0.0.1 and no external network is touched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    CoalescingScoringClient,
    RemoteScoringBackend,
    export_model,
)
from fairexp.models import LogisticRegression

N_CALLERS = 4


def build_workload(n_samples: int = 500):
    """The E1 loan workload: fitted model + the matrix to score."""
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    return model, test.X


def launch_server(graph_path: str) -> tuple[subprocess.Popen, str]:
    """Start ``python -m fairexp serve`` and return (process, base URL)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "fairexp", "serve", "--graph", graph_path],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    line = process.stdout.readline().strip()  # "serving <model> on <url>"
    if not line or process.poll() is not None:
        raise RuntimeError(f"scoring server failed to start: {line!r}")
    return process, line.rsplit(" ", 1)[-1]


def run_checks(url: str, model, X: np.ndarray) -> dict:
    """Parity + coalescing assertions against a live server; numbers returned."""
    reference = np.asarray(model.predict(X))

    # Bitwise parity over the wire.
    solo = RemoteScoringBackend(url, window=0.0)
    remote = solo.predict(X)
    assert np.array_equal(remote, reference), "remote labels diverge from model.predict"
    solo.close()

    # Independent baseline: sequential callers, private clients.
    slices = np.array_split(np.arange(X.shape[0]), N_CALLERS)
    independent_clients = [CoalescingScoringClient(url, window=0.0)
                           for _ in range(N_CALLERS)]
    independent_rows = []
    for k, rows in enumerate(slices):
        backend = RemoteScoringBackend(independent_clients[k])
        for start in range(0, len(rows), 8):  # several batches per caller
            backend.predict(X[rows[start:start + 8]])
        independent_rows.append(backend.row_count)
        backend.close()
    independent_wire_calls = sum(c.wire_call_count for c in independent_clients)

    # Coalescing run: the same batches, concurrent callers, one client.
    client = CoalescingScoringClient(url, window=0.25)
    backends = [RemoteScoringBackend(client) for _ in range(N_CALLERS)]
    barrier = threading.Barrier(N_CALLERS)
    failures: list[BaseException] = []

    def run(k):
        try:
            barrier.wait(timeout=30)
            rows = slices[k]
            for start in range(0, len(rows), 8):
                out = backends[k].predict(X[rows[start:start + 8]])
                assert np.array_equal(out, reference[rows[start:start + 8]])
        except BaseException as error:  # noqa: BLE001 - surfaced below
            failures.append(error)
        finally:
            backends[k].close()

    threads = [threading.Thread(target=run, args=(k,)) for k in range(N_CALLERS)]
    start_time = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start_time
    if failures:
        raise failures[0]

    coalesced_rows = [backend.row_count for backend in backends]
    assert 0 < client.wire_call_count < independent_wire_calls, (
        f"coalescing did not reduce wire calls: {client.wire_call_count} vs "
        f"{independent_wire_calls}"
    )
    assert coalesced_rows == independent_rows, "per-caller row accounting drifted"
    assert client.wire_row_count == sum(coalesced_rows)

    return {
        "experiment": "SERVING_SUBPROCESS",
        "n_rows_scored": int(X.shape[0]),
        "parity_bitwise": True,
        "independent_wire_calls": independent_wire_calls,
        "coalesced_wire_calls": client.wire_call_count,
        "coalescing_factor": independent_wire_calls / max(client.wire_call_count, 1),
        "rows_per_caller": coalesced_rows,
        "coalesced_wall_seconds": elapsed,
    }


def main() -> dict:
    """Export, serve out of process, verify; returns the recorded point."""
    model, X = build_workload()
    with tempfile.TemporaryDirectory() as tmp:
        graph_path = os.path.join(tmp, "e1_model.npz")
        export_model(model).save(graph_path)
        process, url = launch_server(graph_path)
        try:
            point = run_checks(url, model, X)
        finally:
            process.terminate()
            process.wait(timeout=30)
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit_trajectory

    class _NoBenchmark:
        stats = None

    emit_trajectory("SERVING_SUBPROCESS", _NoBenchmark(), point)
    return point


if __name__ == "__main__":
    print(json.dumps(main(), indent=2))
