"""Tests for the taxonomy / Table I registry and the end-to-end auditor."""

import numpy as np
import pytest

from fairexp.core import (
    TABLE_I,
    FairnessAuditor,
    explanation_taxonomy,
    fairness_taxonomy,
    implemented_class,
    render_table_i,
    render_taxonomy,
)
from fairexp.explanations.base import ExplainerInfo


class TestTaxonomies:
    def test_fairness_taxonomy_covers_paper_dimensions(self):
        taxonomy = fairness_taxonomy()
        for dimension in ["Level of fairness", "Fairness criteria", "Stage of mitigation",
                          "Task", "Data modality"]:
            assert taxonomy.find(dimension) is not None

    def test_fairness_taxonomy_group_metrics(self):
        taxonomy = fairness_taxonomy()
        group = taxonomy.find("Group")
        leaves = " ".join(group.leaves())
        assert "statistical parity" in leaves
        assert "equal opportunity" in leaves.lower()
        assert "Calibration-based" in group.leaves()[-1] or any(
            "Calibration" in leaf for leaf in group.leaves()
        )

    def test_explanation_taxonomy_covers_paper_dimensions(self):
        taxonomy = explanation_taxonomy()
        for dimension in ["Stage", "Post-hoc", "Model access", "Coverage", "Multiplicity",
                          "Explanation type", "Task-specific explanations"]:
            assert taxonomy.find(dimension) is not None

    def test_explanation_type_has_three_families(self):
        taxonomy = explanation_taxonomy()
        node = taxonomy.find("Explanation type")
        assert {child.name for child in node.children} == {
            "Feature-based", "Example-based", "Approximation-based",
        }

    def test_render_is_indented_outline(self):
        text = render_taxonomy(fairness_taxonomy())
        lines = text.splitlines()
        assert lines[0] == "Fairness"
        assert any(line.startswith("  ") for line in lines)
        assert any(line.startswith("    ") for line in lines)

    def test_taxonomy_sizes_reasonable(self):
        assert fairness_taxonomy().size() >= 25
        assert explanation_taxonomy().size() >= 25


class TestTableI:
    def test_has_all_surveyed_references(self):
        references = {entry.reference for entry in TABLE_I}
        expected = {"[10]", "[63]", "[71]", "[72]", "[73]", "[74]", "[75]", "[77]", "[82]",
                    "[79]", "[80]", "[89]", "[81]", "[84]", "[86]", "[87]", "[88]", "[90]",
                    "[83]", "[91]", "[44]"}
        assert expected <= references

    def test_every_row_resolves_to_an_implementation(self):
        for entry in TABLE_I:
            implementation = implemented_class(entry)
            assert implementation is not None

    def test_explainer_rows_carry_taxonomy_metadata(self):
        for entry in TABLE_I:
            implementation = implemented_class(entry)
            if isinstance(implementation, type):
                info = getattr(implementation, "info", None)
                assert isinstance(info, ExplainerInfo), entry.name

    def test_goals_are_valid(self):
        for entry in TABLE_I:
            goals = {token.strip() for token in entry.goal.split(",")}
            assert goals <= {"E", "U", "M"}

    def test_tasks_are_valid(self):
        assert {entry.task for entry in TABLE_I} <= {"Clf", "Recs", "Rank"}

    def test_predominant_trends_match_paper_summary(self):
        # The paper observes: post-processing, black-box, model-agnostic and
        # group-level approaches dominate, and CFEs are the prevalent technique.
        n = len(TABLE_I)
        assert sum(entry.stage == "Post" for entry in TABLE_I) == n
        assert sum(entry.access == "B" for entry in TABLE_I) / n > 0.8
        assert sum(entry.agnostic == "A" for entry in TABLE_I) / n > 0.8
        assert sum("CFE" in entry.explanation_type for entry in TABLE_I) / n > 0.4
        assert sum(entry.fairness_level in ("Group", "Both") for entry in TABLE_I) / n > 0.8

    def test_render_contains_every_reference(self):
        text = render_table_i()
        for entry in TABLE_I:
            assert entry.reference in text


class TestFairnessAuditor:
    @pytest.fixture(scope="class")
    def report(self, loan_data, loan_model):
        _, train, test = loan_data
        auditor = FairnessAuditor(include=("burden", "nawb", "shap"), max_explained=25,
                                  random_state=0)
        return auditor.audit(loan_model, test.subset(np.arange(120)), train_dataset=train)

    def test_report_contains_metrics_and_explanations(self, report):
        assert report.metrics.statistical_parity_difference < -0.2
        assert report.burden is not None
        assert report.nawb is not None
        assert report.fairness_attribution is not None

    def test_burden_and_shap_agree_on_direction(self, report):
        # Both explanation types should point at unfairness against the
        # protected group for the biased loan model.
        assert report.burden.gap > 0
        assert report.fairness_attribution.as_dict()["group"] < 0

    def test_summary_renders(self, report):
        text = report.summary()
        assert "Group fairness metrics" in text
        assert "Counterfactual burden" in text
        assert "Fairness-Shapley" in text

    def test_as_dict_flattens_headline_numbers(self, report):
        flat = report.as_dict()
        assert "statistical_parity_difference" in flat
        assert "burden_gap" in flat
        assert "nawb_gap" in flat

    def test_include_subset_skips_components(self, loan_data, loan_model):
        _, train, test = loan_data
        auditor = FairnessAuditor(include=(), max_explained=10, random_state=0)
        report = auditor.audit(loan_model, test.subset(np.arange(60)), train_dataset=train)
        assert report.burden is None
        assert report.nawb is None
        assert report.fairness_attribution is None
