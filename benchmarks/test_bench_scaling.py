"""Larger-N scaling point for the E1/E2 trajectory.

``BENCH_E1_E2.json`` (from ``test_bench_burden.py``) records the standard
600-sample configuration; this module adds a **10x** point (6000 samples,
800 audited rows) to ``BENCH_E1_E2_XL.json`` so the trajectory carries two
sizes and scaling curves can be compared across runs.

The asserted shape claim is the lockstep engine's scaling property: predict
*calls* grow with the number of search steps, not the number of audited
rows, so the 10x workload must cost far fewer than 10x the small workload's
predict calls (rows per call grow instead).
"""

from conftest import record

from fairexp.experiments import run_e1_e2_burden_nawb

SMALL = {"n_samples": 600, "audit_size": 80}
LARGE = {"n_samples": 6000, "audit_size": 800}


def test_e1_at_10x_samples(benchmark):
    small = run_e1_e2_burden_nawb(**SMALL)
    large = benchmark.pedantic(run_e1_e2_burden_nawb, kwargs=LARGE,
                               rounds=1, iterations=1)

    # The paper's qualitative claims hold at 10x scale.
    assert large["burden_gap_biased"] > 0.5
    assert large["nawb_gap_biased"] > 0.05
    assert abs(large["burden_gap_fair"]) < large["burden_gap_biased"] / 2

    # Lockstep batching: 10x rows must NOT cost 10x predict calls (the
    # whole point of the batched engine; calls scale with search steps).
    assert large["predict_calls_biased"] < 5 * small["predict_calls_biased"]
    assert large["predict_calls_biased"] < 200

    record(benchmark, {
        **{f"small_{key}": small[key]
           for key in ("predict_calls_biased", "burden_gap_biased",
                       "schedule_steps_biased", "schedule_draws_biased")},
        **{key: large[key] for key in large if "rendered" not in key},
        "scale_factor": LARGE["n_samples"] / SMALL["n_samples"],
        "predict_call_growth": (
            large["predict_calls_biased"] / max(small["predict_calls_biased"], 1)
        ),
    }, experiment="E1_E2_XL")
