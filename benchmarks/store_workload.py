"""Shared workload for the persistent-store benchmarks — importable and runnable.

Not a test module.  It serves three callers with one definition of "the
sweep", so cold and warm runs are guaranteed to fingerprint identically:

* ``benchmarks/test_bench_store.py`` imports :func:`build_session` /
  :func:`run_sweep` for the in-process cold pass;
* the same benchmark launches ``python store_workload.py <store_dir>`` as the
  *fresh-process* warm pass (the acceptance criterion is about new
  processes, so the warm sweep must not share this interpreter);
* CI runs the script twice against a cached store directory to demonstrate
  the warm path across builds (see ``.github/workflows/ci.yml``).

As a script it prints one JSON object: the audit numbers, the sweep wall
time, and the session's store/engine accounting.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from fairexp.core import BurdenExplainer, NAWBExplainer, PreCoFExplainer
from fairexp.datasets import make_loan_dataset
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    GrowingSpheresCounterfactual,
)
from fairexp.models import LogisticRegression


def build_workload(n_samples: int = 500, audit_size: int = 80):
    """The fixed loan workload every store benchmark audits."""
    dataset = make_loan_dataset(n_samples, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1000, random_state=0).fit(train.X, train.y)
    subset = test.subset(np.arange(min(audit_size, test.n_samples)))
    return dataset, train, subset, model


def build_session(store_dir, *, n_samples: int = 500, audit_size: int = 80,
                  n_jobs: int = 1, executor: str = "auto"):
    """A store-backed :class:`AuditSession` over the fixed workload."""
    dataset, train, subset, model = build_workload(n_samples, audit_size)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    generator = GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                             random_state=0)
    session = AuditSession(generator, store=store_dir, n_jobs=n_jobs,
                           executor=executor)
    return session, dataset, subset


def run_sweep(session, dataset, subset) -> dict:
    """Burden + NAWB + PreCoF through one session; headline gaps returned."""
    burden = BurdenExplainer(session=session).explain(subset.X, subset.sensitive_values)
    nawb = NAWBExplainer(session=session).explain(subset.X, subset.y,
                                                  subset.sensitive_values)
    precof = PreCoFExplainer(feature_names=dataset.feature_names,
                             sensitive_feature=dataset.sensitive,
                             session=session).explain(subset.X, subset.sensitive_values)
    return {
        "burden_gap": burden.gap,
        "nawb_gap": nawb.gap,
        "precof_sensitive_change_rate": precof.sensitive_change_rate,
    }


def timed_sweep(store_dir, **session_kwargs) -> dict:
    """One full sweep against ``store_dir``: audit numbers + accounting."""
    session, dataset, subset = build_session(store_dir, **session_kwargs)
    start = time.perf_counter()
    numbers = run_sweep(session, dataset, subset)
    elapsed = time.perf_counter() - start
    stats = session.stats()
    return {
        **numbers,
        "sweep_wall_time_seconds": elapsed,
        "engine_predict_calls": stats["engine_predict_calls"],
        "predict_call_count": stats["predict_call_count"],
        "store_row_hits": stats["store_row_hits"],
        "store_entries": stats.get("store_entries", 0),
        "store_hits": stats.get("store_hits", 0),
        "store_misses": stats.get("store_misses", 0),
        "store_bytes_read": stats.get("store_bytes_read", 0),
        "schedule_steps": stats.get("schedule_steps", 0),
        "schedule_draws": stats.get("schedule_draws", 0),
    }


def main(argv: list[str]) -> int:
    store_dir = argv[1] if len(argv) > 1 else os.environ.get("FAIREXP_STORE_DIR", "")
    if not store_dir:
        print("usage: store_workload.py <store_dir>  (or set FAIREXP_STORE_DIR)",
              file=sys.stderr)
        return 2
    print(json.dumps(timed_sweep(store_dir)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
