"""E13: probabilistic contrastive counterfactuals [10] before / after mitigation."""

from conftest import record

from fairexp.experiments import run_e13_contrastive


def test_contrastive_scores_shrink_after_mitigation(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e13_contrastive, kwargs={"n_samples": 600}, rounds=1, iterations=1,
    ), experiment="E13")
    # Under the biased model, not belonging to the protected group is highly
    # "necessary" for approval — direct evidence of discrimination.
    assert results["sensitive_necessity_biased"] > 0.5
    # After in-processing mitigation the necessity of group membership drops sharply.
    assert results["sensitive_necessity_mitigated"] < results["sensitive_necessity_biased"] * 0.7
    # The attribute ranking points at a legitimate qualification feature.
    assert results["top_ranked_attribute"] in {"income", "credit_score", "employment_years",
                                               "has_collateral", "debt"}
    assert results["top_attribute_sufficiency"] > 0.2
