"""Two-level recourse sets (AReS-style, Rawal & Lakkaraju [74]).

AReS produces *interpretable and interactive summaries of actionable
recourses*: a two-level structure where an outer "subgroup descriptor"
predicate selects a subpopulation and an inner rule prescribes the action
(feature changes) its members should take.  The summary is optimized for a
weighted combination of correctness (the action flips the prediction),
coverage (how many affected individuals are covered) and cost, subject to a
budget on the number of rules — making recourse differences between
subgroups directly visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.rules import Predicate, discretize_features
from ..explanations.session import AuditSession
from ..fairness.groups import group_masks
from .facts import Action

__all__ = ["RecourseRule", "TwoLevelRecourseSet", "RecourseSetExplainer"]


@dataclass
class RecourseRule:
    """One two-level rule: IF descriptor THEN apply action."""

    descriptor: tuple[Predicate, ...]
    action: Action
    coverage: float
    correctness: float
    mean_cost: float

    def describe(self, feature_names: Sequence[str]) -> str:
        """Human-readable if/then rendering of the rule."""
        premise = " AND ".join(str(p) for p in self.descriptor) or "TRUE"
        return (
            f"IF {premise} THEN {self.action.describe(feature_names)} "
            f"(coverage={self.coverage:.2f}, correctness={self.correctness:.2f}, "
            f"cost={self.mean_cost:.2f})"
        )


@dataclass
class TwoLevelRecourseSet:
    """The selected set of recourse rules plus per-group aggregate statistics."""

    rules: list[RecourseRule]
    total_coverage: float
    coverage_protected: float
    coverage_reference: float
    correctness_protected: float
    correctness_reference: float
    feature_names: list[str] = field(default_factory=list)

    @property
    def coverage_gap(self) -> float:
        """coverage(reference) - coverage(protected)."""
        return self.coverage_reference - self.coverage_protected

    def describe(self) -> list[str]:
        """Human-readable rendering of the full two-level rule set."""
        return [rule.describe(self.feature_names) for rule in self.rules]


@ExplainerRegistry.register("recourse_sets", capabilities=("fairness-explainer", "rule-based"))
class RecourseSetExplainer:
    """Greedy construction of a two-level recourse set.

    Rules are built by pairing frequent subgroup descriptors (mined on the
    affected population) with candidate actions, scoring each pair by
    ``correctness * coverage - cost_weight * cost``, and greedily selecting
    rules with marginal coverage gain until ``max_rules`` is reached.  All
    (descriptor, action) candidates are scored with one coalesced
    ``model.predict`` over the stacked modified matrices instead of one tiny
    predict per pair.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="both",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model=None,
        candidate_actions: Sequence[Action] = (),
        *,
        feature_names: Sequence[str],
        sensitive_index: int | None = None,
        max_rules: int = 4,
        n_bins: int = 3,
        min_descriptor_support: float = 0.15,
        cost_weight: float = 0.02,
        session: AuditSession | None = None,
    ) -> None:
        # With a session and no explicit model, candidate scoring routes
        # through the sweep's shared counting/memoizing adapter; an explicit
        # model always wins and is used as-is, outside that accounting.
        if model is None and session is not None:
            model = session.model
        if model is None:
            raise ValidationError("RecourseSetExplainer needs a model or a session")
        if not candidate_actions:
            raise ValidationError("RecourseSetExplainer needs candidate_actions")
        self.model = model
        self.candidate_actions = list(candidate_actions)
        self.feature_names = list(feature_names)
        self.sensitive_index = sensitive_index
        self.max_rules = max_rules
        self.n_bins = n_bins
        self.min_descriptor_support = min_descriptor_support
        self.cost_weight = cost_weight

    def _descriptors(self, X_affected: np.ndarray) -> list[tuple[Predicate, ...]]:
        feature_indices = [
            j for j in range(X_affected.shape[1]) if j != self.sensitive_index
        ]
        predicates = discretize_features(
            X_affected, feature_names=self.feature_names, n_bins=self.n_bins,
            feature_indices=feature_indices,
        )
        descriptors: list[tuple[Predicate, ...]] = [()]
        for predicate in predicates:
            if predicate.mask(X_affected).mean() >= self.min_descriptor_support:
                descriptors.append((predicate,))
        return descriptors

    def explain(self, X, sensitive, *, protected_value=1) -> TwoLevelRecourseSet:
        """Build the recourse-set summary on the negatively classified population."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = np.asarray(self.model.predict(X))
        affected_mask = predictions == 0
        X_affected = X[affected_mask]
        sensitive_affected = sensitive[affected_mask]
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0

        # Stage every (descriptor, action) pair, then score all of them with a
        # single coalesced predict over the stacked modified matrices.
        staged: list[tuple[tuple[Predicate, ...], Action, np.ndarray, np.ndarray]] = []
        blocks: list[np.ndarray] = []
        for descriptor in self._descriptors(X_affected):
            descriptor_mask = np.ones(X_affected.shape[0], dtype=bool)
            for predicate in descriptor:
                descriptor_mask &= predicate.mask(X_affected)
            if not descriptor_mask.any():
                continue
            rows = X_affected[descriptor_mask]
            for action in self.candidate_actions:
                staged.append((descriptor, action, descriptor_mask, rows))
                blocks.append(action.apply(rows))

        candidate_rules: list[tuple[RecourseRule, np.ndarray]] = []
        if staged:
            predictions = np.asarray(self.model.predict(np.vstack(blocks)))
            offset = 0
            for (descriptor, action, descriptor_mask, rows), block in zip(staged, blocks):
                flipped = predictions[offset:offset + block.shape[0]] == 1
                offset += block.shape[0]
                rule = RecourseRule(
                    descriptor=descriptor, action=action,
                    coverage=float(descriptor_mask.mean()),
                    correctness=float(flipped.mean()),
                    mean_cost=float(action.cost(rows, scale).mean()),
                )
                # Per-row success mask in the affected population's indexing.
                success_mask = np.zeros(X_affected.shape[0], dtype=bool)
                success_mask[np.flatnonzero(descriptor_mask)[flipped]] = True
                candidate_rules.append((rule, success_mask))

        # Greedy selection by marginal covered-and-corrected individuals.
        selected: list[RecourseRule] = []
        covered = np.zeros(X_affected.shape[0], dtype=bool)
        for _ in range(self.max_rules):
            best_rule, best_gain, best_mask = None, 0.0, None
            for rule, success_mask in candidate_rules:
                marginal = float((success_mask & ~covered).mean())
                gain = marginal - self.cost_weight * rule.mean_cost
                if gain > best_gain + 1e-12:
                    best_rule, best_gain, best_mask = rule, gain, success_mask
            if best_rule is None:
                break
            selected.append(best_rule)
            covered |= best_mask

        masks = group_masks(sensitive_affected, protected_value=protected_value) if (
            np.unique(sensitive_affected).shape[0] > 1
        ) else None

        def side_coverage(group_mask: np.ndarray) -> tuple[float, float]:
            if group_mask.sum() == 0:
                return 0.0, 0.0
            coverage = float(covered[group_mask].mean())
            # correctness among covered members of the group
            covered_members = covered & group_mask
            correctness = float(covered_members.sum() / max(group_mask.sum(), 1))
            return coverage, correctness

        if masks is not None:
            coverage_protected, correctness_protected = side_coverage(masks.protected)
            coverage_reference, correctness_reference = side_coverage(masks.reference)
        else:
            coverage_protected = coverage_reference = float(covered.mean())
            correctness_protected = correctness_reference = float(covered.mean())

        return TwoLevelRecourseSet(
            rules=selected,
            total_coverage=float(covered.mean()),
            coverage_protected=coverage_protected,
            coverage_reference=coverage_reference,
            correctness_protected=correctness_protected,
            correctness_reference=correctness_reference,
            feature_names=self.feature_names,
        )
