"""Declarative experiment specs for the paper's display items and per-method claims.

Each experiment id (FIG1/FIG2/TAB1 and E1–E14 from DESIGN.md) is a
:class:`~fairexp.sweep.SweepSpec` registered with
:class:`~fairexp.sweep.SweepRegistry`: the spec names the parameterized
workload implementation (:mod:`fairexp.workloads`), its fixed arguments,
and the :class:`~fairexp.sweep.Factor` s it crosses — counterfactual
explainer × search schedule × predict backend × kernel path for E1/E2,
model family × backend for E4, dataset for E14, and so on.  The planner
prunes infeasible cells through the explainer registry's structured
compatibility checks plus declared resources (a gradient-based generator
over a model without gradients, a numba kernel path without numba, a
remote backend for an unservable workload), so a spec's cross product is
safe to enumerate blindly: ``python -m fairexp sweep plan`` shows exactly
which cells run and why the rest don't.

**Every factor's first level reproduces the historical hard-coded run bit
for bit** — ``SweepRegistry.get("E5").cell().spec.runner(**cell.params())``
computes exactly what ``run_e5_group_counterfactuals()`` always did, which
``tests/core/test_sweep_parity.py`` asserts for all experiments.

The legacy ``run_*`` functions are re-exported from
:mod:`fairexp.workloads` unchanged (same names, signatures and defaults)
for API stability; ``ALL_EXPERIMENTS`` is now *derived* from the spec
registry instead of being a second hand-maintained list.
"""

from __future__ import annotations

from .explanations.kernels import numba_parallel_supported, numba_version
from .sweep import Factor, SweepRegistry, SweepSpec
from .workloads import (
    run_e1_e2_burden_nawb,
    run_e3_precof,
    run_e4_facts,
    run_e5_group_counterfactuals,
    run_e6_causal_recourse,
    run_e7_fair_recourse,
    run_e8_fairness_shap,
    run_e9_data_explanations,
    run_e10_recsys,
    run_e11_ranking,
    run_e12_graphs,
    run_e13_contrastive,
    run_e14_mitigation,
    run_fig1_taxonomy,
    run_fig2_taxonomy,
    run_table1,
)

__all__ = [
    "run_fig1_taxonomy",
    "run_fig2_taxonomy",
    "run_table1",
    "run_e1_e2_burden_nawb",
    "run_e3_precof",
    "run_e4_facts",
    "run_e5_group_counterfactuals",
    "run_e6_causal_recourse",
    "run_e7_fair_recourse",
    "run_e8_fairness_shap",
    "run_e9_data_explanations",
    "run_e10_recsys",
    "run_e11_ranking",
    "run_e12_graphs",
    "run_e13_contrastive",
    "run_e14_mitigation",
    "ALL_EXPERIMENTS",
]


# --------------------------------------------------------------------------
# Shared factor builders
# --------------------------------------------------------------------------
#: What the loan/adult tabular workloads offer the planner: the audited
#: LogisticRegression exposes predictions, probabilities and input
#: gradients, and the datasets carry labels + per-feature specs.
_TABULAR_MODEL = ("predict", "predict_proba", "gradient_input")
_TABULAR_DATA = ("labels", "feature-specs")

#: Resources the servable tabular workloads provide.  ``"servable"`` gates
#: the onnx/remote backend levels (every E1–E9 model family exports to a
#: compute graph); ``"numba"`` appears only when the compiled kernel path
#: is actually importable, so the kernels factor's numba level prunes —
#: with a named reason — in numpy-only environments instead of silently
#: falling back.  ``"numba_parallel"`` likewise gates the turbo level: a
#: sweep should compare the fastmath+parallel tier, not its threaded-NumPy
#: fallback (which is numerically just the numpy tier under a turbo
#: fingerprint).
_SERVABLE = frozenset(
    {"servable"}
    | ({"numba"} if numba_version() is not None else set())
    | ({"numba_parallel"} if numba_parallel_supported() else set())
)


def _backend_factor() -> Factor:
    return Factor(
        "backend",
        levels=(("numpy", "numpy"), ("onnx", "onnx"), ("remote", "remote")),
        requires={"onnx": ("servable",), "remote": ("servable",)},
    )


def _schedule_factor() -> Factor:
    # The geometric default travels as ``schedule=None`` (the session's
    # built-in ladder) so the default cell matches the legacy runs exactly.
    return Factor("schedule", levels=(("geometric", None), ("adaptive", "adaptive")))


def _explainer_factor() -> Factor:
    return Factor(
        "explainer",
        levels=(("growing_spheres", "growing_spheres"),
                ("random_search", "random_search"),
                ("gradient", "gradient")),
        registry=True,
        capability="counterfactual-generator",
    )


def _kernels_factor() -> Factor:
    # ``default`` = ``kernels=None`` (the FAIREXP_KERNELS auto path, the
    # legacy behaviour); the explicit levels pin one implementation.  The
    # exact levels are bitwise-neutral, so they cross freely with resume;
    # ``turbo`` is tolerance-bound and fingerprint-visible, and prunes
    # (named reason) unless the workload provides ``numba_parallel`` — the
    # fastmath+parallel compiled tier, not its fallback, is what a sweep
    # should be comparing.
    return Factor(
        "kernels",
        levels=(("default", None), ("numpy", "numpy"), ("numba", "numba"),
                ("turbo", "turbo")),
        requires={"numba": ("numba",), "turbo": ("numba_parallel",)},
    )


def _spec(**kwargs) -> SweepSpec:
    return SweepRegistry.register(SweepSpec(**kwargs))


# --------------------------------------------------------------------------
# Display items: single-cell designs
# --------------------------------------------------------------------------
_spec(experiment="FIG1", runner=run_fig1_taxonomy,
      description="Figure 1: fairness taxonomy regeneration")
_spec(experiment="FIG2", runner=run_fig2_taxonomy,
      description="Figure 2: explanation taxonomy + registry coverage")
_spec(experiment="TAB1", runner=run_table1,
      description="Table I: method comparison table, implementation audit")

# --------------------------------------------------------------------------
# E1–E9: counterfactual/recourse audits over the tabular loan workloads
# --------------------------------------------------------------------------
_spec(
    experiment="E1/E2", runner=run_e1_e2_burden_nawb,
    factors=(_explainer_factor(), _schedule_factor(), _backend_factor(),
             _kernels_factor()),
    fixed={"n_samples": 600, "audit_size": 80},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="Burden + NAWB on biased vs fair loan models",
)
_spec(
    experiment="E3", runner=run_e3_precof,
    factors=(_schedule_factor(), _backend_factor()),
    fixed={"n_samples": 600, "audit_size": 80},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="PreCoF explicit/implicit bias, two-model fleet",
)
_spec(
    experiment="E4", runner=run_e4_facts,
    factors=(Factor("model", levels=(("logistic", "logistic"), ("tree", "tree"),
                                     ("forest", "forest"), ("mlp", "mlp"))),
             _backend_factor()),
    fixed={"n_samples": 700},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="FACTS subgroup recourse audit across model families",
)
_spec(
    experiment="E5", runner=run_e5_group_counterfactuals,
    factors=(_schedule_factor(), _backend_factor()),
    fixed={"n_samples": 600},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="GLOBE-CE + CF trees + recourse sets + generator ablation",
)
_spec(
    experiment="E6", runner=run_e6_causal_recourse,
    factors=(_backend_factor(),),
    fixed={"n_samples": 500, "audit_size": 12},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA + ("scm",),
    resources=_SERVABLE,
    description="Causal recourse cost vs independent manipulation (SCM)",
)
_spec(
    experiment="E7", runner=run_e7_fair_recourse,
    factors=(_backend_factor(),),
    fixed={"n_samples": 600},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="Recourse gap report + causal recourse fairness",
)
_spec(
    experiment="E8", runner=run_e8_fairness_shap,
    factors=(_backend_factor(),),
    fixed={"n_samples": 600, "audit_size": 120},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="Fairness-Shapley + causal path decomposition",
)
_spec(
    experiment="E9", runner=run_e9_data_explanations,
    factors=(_backend_factor(),),
    fixed={"n_samples": 600},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    resources=_SERVABLE,
    description="Gopher data-based explanations (+ backend export parity)",
)

# --------------------------------------------------------------------------
# E10–E14: other modalities and the mitigation ladder
# --------------------------------------------------------------------------
_spec(
    experiment="E10", runner=run_e10_recsys,
    fixed={"n_users": 60, "n_items": 35},
    modality="recsys", model_provides=("predict", "recommend_all"),
    description="CEF + CFairER + edge removal on exposure bias",
)
_spec(
    experiment="E11", runner=run_e11_ranking,
    fixed={"n_candidates": 200},
    modality="ranking", model_provides=("rank",),
    description="Dexer top-k under-representation",
)
_spec(
    experiment="E12", runner=run_e12_graphs,
    fixed={"n_nodes": 90},
    modality="graph", model_provides=("predict", "recommend_all"),
    description="Structural bias + node influence + GNNUERS",
)
_spec(
    experiment="E13", runner=run_e13_contrastive,
    fixed={"n_samples": 600},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    description="Probabilistic contrastive scores before/after mitigation",
)
_spec(
    experiment="E14", runner=run_e14_mitigation,
    factors=(Factor("dataset", levels=(("adult", "adult"), ("loan", "loan"))),),
    fixed={"n_samples": 700},
    model_provides=_TABULAR_MODEL, data_provides=_TABULAR_DATA,
    description="Pre-/in-/post-processing mitigation ladder",
)


#: Derived from the spec registry — one source of truth for "what
#: experiments exist"; the CLI and the trajectory benchmarks key off it.
ALL_EXPERIMENTS = {spec.experiment: spec.runner for spec in SweepRegistry.specs()}
