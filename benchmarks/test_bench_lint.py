"""Lint health trajectory for the shipped tree (BENCH_LINT.json).

Times a full ``fairexp lint`` pass over ``src/`` and records the finding
counts next to the wall time.  The numbers are the PR-over-PR contract
made visible: ``lint_findings_total`` counts every raw finding (fresh or
baselined) and ``lint_baseline_size`` the grandfathered debt — both must
stay at the self-check's levels (zero debt, one budgeted suppression),
and the trajectory shows the first build where that stops being true.
"""

from pathlib import Path

from conftest import record

from fairexp.lint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_bench_lint_src_tree(benchmark):
    baseline = Baseline.load(REPO_ROOT / "LINT_BASELINE.json")
    report = benchmark(lint_paths, [REPO_ROOT / "src"], root=REPO_ROOT)
    fresh = baseline.fresh(report.findings)
    record(
        benchmark,
        {
            "lint_findings_total": len(report.findings),
            "lint_fresh_findings": len(fresh),
            "lint_baseline_size": len(baseline),
            "lint_suppressed": report.suppressed,
            "lint_files": report.files,
            "lint_parse_errors": len(report.parse_errors),
        },
        experiment="LINT",
    )
    assert fresh == [], "\n".join(f.render() for f in fresh)
    assert report.parse_errors == []
