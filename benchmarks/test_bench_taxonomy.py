"""FIG1 / FIG2: regenerate the fairness and explanation taxonomies."""

from conftest import record

from fairexp.experiments import run_fig1_taxonomy, run_fig2_taxonomy


def test_figure1_fairness_taxonomy(benchmark):
    results = record(benchmark, benchmark(run_fig1_taxonomy), experiment="FIG1")
    # Figure 1 dimensions: level, criteria, stage, task, modality (+ fairness in explanations).
    assert results["n_nodes"] >= 25
    assert "Level of fairness" in results["dimensions"]
    assert "Stage of mitigation" in results["dimensions"]
    assert "Fairness" in results["rendered"].splitlines()[0]


def test_figure2_explanation_taxonomy(benchmark):
    results = record(benchmark, benchmark(run_fig2_taxonomy), experiment="FIG2")
    assert results["n_nodes"] >= 25
    assert "Stage" in results["dimensions"]
    assert "Task-specific explanations" in results["dimensions"]
    assert "Counterfactual explanations" in results["rendered"]
    assert "Shapley values (SHAP)" in results["rendered"]
