"""Sweep orchestration: factors, planning/pruning, journal, registry, CLI.

The pruning property tests verify the planner's contract *independently*:
every cell a spec emits must satisfy the explainer registry's structured
compatibility check plus the declared resource requirements, every cell it
prunes must violate at least one, and the emitted/pruned partition must be
exhaustive over the raw cross product — re-derived here with the test's
own proxy objects, not the planner's.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from fairexp.exceptions import ValidationError
from fairexp.explanations.base import ExplainerRegistry
from fairexp.sweep import (
    CellResult,
    Factor,
    SweepCell,
    SweepJournal,
    SweepRegistry,
    SweepSpec,
    active_store_dir,
    is_accounting_key,
    run_sweep,
    sweep_plan,
    track_session,
)


@pytest.fixture(autouse=True)
def _no_env_store(monkeypatch):
    """Keep ambient $FAIREXP_STORE_DIR from redirecting journal-less sweeps."""
    monkeypatch.delenv("FAIREXP_STORE_DIR", raising=False)


def _noop_runner(**kwargs):
    return {"ok": 1, **{k: str(v) for k, v in kwargs.items()}}


class TestFactor:
    def test_levels_normalize_from_mapping(self):
        factor = Factor("backend", levels={"numpy": "numpy", "onnx": "onnx"})
        assert factor.labels == ("numpy", "onnx")
        assert factor.value("onnx") == "onnx"

    def test_levels_normalize_from_bare_values(self):
        factor = Factor("n", levels=("a", "b"))
        assert factor.labels == ("a", "b")
        assert factor.value("a") == "a"

    def test_label_value_pairs_can_differ(self):
        factor = Factor("schedule", levels=(("geometric", None), ("adaptive", "adaptive")))
        assert factor.value("geometric") is None
        assert factor.value("adaptive") == "adaptive"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValidationError):
            Factor("x", levels=(("a", 1), ("a", 2)))

    def test_empty_levels_rejected(self):
        with pytest.raises(ValidationError):
            Factor("x", levels=())

    def test_unknown_label_raises(self):
        factor = Factor("x", levels=(("a", 1),))
        with pytest.raises(KeyError):
            factor.value("b")


class TestSpecPlanning:
    def _spec(self, **kwargs):
        defaults = dict(experiment="T", runner=_noop_runner)
        defaults.update(kwargs)
        return SweepSpec(**defaults)

    def test_zero_factor_spec_is_single_cell(self):
        plan = self._spec().plan()
        assert plan.raw_size == 1
        assert len(plan.emitted) == 1
        assert plan.emitted[0].cell_id == "T"

    def test_partition_is_exhaustive(self):
        spec = self._spec(
            factors=(Factor("a", levels=("x", "y")),
                     Factor("b", levels={"p": 1, "q": 2}, requires={"q": ("gpu",)})),
        )
        plan = spec.plan()
        assert plan.raw_size == 4
        assert len(plan.emitted) + len(plan.pruned) == 4
        pruned_ids = {cell.cell_id for cell in plan.pruned}
        assert pruned_ids == {"T[a=x,b=q]", "T[a=y,b=q]"}
        for cell in plan.pruned:
            assert any("gpu" in reason for reason in cell.reasons)

    def test_resources_satisfy_requires(self):
        spec = self._spec(
            factors=(Factor("b", levels={"q": 1}, requires={"q": ("gpu",)}),),
            resources=frozenset({"gpu"}),
        )
        plan = spec.plan()
        assert len(plan.emitted) == 1 and not plan.pruned

    def test_where_restricts_and_ignores_missing_factors(self):
        spec = self._spec(factors=(Factor("a", levels=("x", "y")),))
        plan = spec.plan(where={"a": ["y"], "unrelated": ["z"]})
        assert [cell.cell_id for cell in plan.emitted] == ["T[a=y]"]

    def test_where_unknown_level_raises(self):
        spec = self._spec(factors=(Factor("a", levels=("x",)),))
        with pytest.raises(ValidationError):
            spec.plan(where={"a": ["nope"]})

    def test_registry_factor_prunes_capability_and_compat(self):
        spec = self._spec(
            factors=(Factor("explainer",
                            levels=(("growing_spheres", "growing_spheres"),
                                    ("gradient", "gradient"),
                                    ("burden", "burden")),
                            registry=True, capability="counterfactual-generator"),),
            model_provides=("predict",),  # no gradient_input
            data_provides=("labels", "feature-specs"),
        )
        plan = spec.plan()
        emitted = {cell.assignment[0][1] for cell in plan.emitted}
        assert emitted == {"growing_spheres"}
        reasons = {cell.assignment[0][1]: cell.reasons for cell in plan.pruned}
        assert any("gradient" in r for r in reasons["gradient"])  # missing gradients
        assert any("capability" in r for r in reasons["burden"])  # not a generator

    def test_default_cell_uses_first_levels(self):
        spec = self._spec(factors=(Factor("a", levels=("x", "y")),), fixed={"n": 3})
        cell = spec.cell()
        assert cell.params() == {"n": 3, "a": "x"}

    def test_cell_overrides_replace_fixed(self):
        spec = self._spec(fixed={"n": 3})
        assert spec.cell(overrides={"n": 7}).params() == {"n": 7}

    def test_digest_tracks_overrides(self):
        spec = self._spec(fixed={"n": 3})
        assert spec.cell().digest() != spec.cell(overrides={"n": 7}).digest()
        assert spec.cell(overrides={"n": 7}).digest() == \
            spec.cell(overrides={"n": 7}).digest()

    def test_infeasible_default_cell_raises(self):
        spec = self._spec(
            factors=(Factor("b", levels={"q": 1}, requires={"q": ("gpu",)}),),
        )
        with pytest.raises(ValidationError):
            spec.cell()


# Registry names usable as levels of a randomized registry factor, plus a
# few unregistered ones so pruning covers the unknown-name path.
_GENERATOR_POOL = ("growing_spheres", "random_search", "gradient",
                   "burden", "nawb", "causal_recourse", "dexer", "cef",
                   "not_a_registered_name")
_MODEL_ATTRS = ("predict", "predict_proba", "gradient_input", "recommend_all", "rank")
_DATA_PROVIDES = ("labels", "scm", "feature-specs")
_RESOURCE_POOL = ("servable", "numba", "gpu")


class _Model:
    def __init__(self, attrs):
        for attr in attrs:
            setattr(self, attr, True)


class _Dataset:
    def __init__(self, modality, provides):
        self.modality = modality
        if "labels" in provides:
            self.y = (1,)
        if "scm" in provides:
            self.scm = object()
        if "feature-specs" in provides:
            self.features = (object(),)


class TestPruningProperties:
    """Emitted ⟺ feasible, pruned ⟺ violated, partition exhaustive —
    over randomized factor subsets and workload declarations."""

    @settings(max_examples=60, deadline=None)
    @given(
        levels=st.lists(st.sampled_from(_GENERATOR_POOL), min_size=1, max_size=5,
                        unique=True),
        model_attrs=st.sets(st.sampled_from(_MODEL_ATTRS)),
        data_provides=st.sets(st.sampled_from(_DATA_PROVIDES)),
        modality=st.sampled_from(("tabular", "graph", "recsys")),
        resources=st.sets(st.sampled_from(_RESOURCE_POOL)),
        required=st.dictionaries(st.sampled_from(("fast", "slow")),
                                 st.sets(st.sampled_from(_RESOURCE_POOL), max_size=2)),
        capability=st.sampled_from((None, "counterfactual-generator",
                                    "fairness-explainer")),
    )
    def test_partition_matches_independent_check(self, levels, model_attrs,
                                                 data_provides, modality, resources,
                                                 required, capability):
        model_attrs = {"predict"} | model_attrs
        factors = [
            Factor("explainer", levels=tuple(levels), registry=True,
                   capability=capability),
            Factor("speed", levels=(("fast", 1), ("slow", 2)),
                   requires={k: tuple(v) for k, v in required.items()}),
        ]
        spec = SweepSpec(
            experiment="PROP", runner=_noop_runner, factors=tuple(factors),
            modality=modality, model_provides=tuple(sorted(model_attrs)),
            data_provides=tuple(sorted(data_provides)),
            resources=frozenset(resources),
        )
        plan = spec.plan()

        # Exhaustive: every raw-product point appears exactly once.
        assert plan.raw_size == len(levels) * 2
        assert len(plan.emitted) + len(plan.pruned) == plan.raw_size
        all_ids = [c.cell_id for c in plan.emitted] + [c.cell_id for c in plan.pruned]
        assert len(set(all_ids)) == plan.raw_size

        # Re-derive feasibility with the test's own proxies.
        model = _Model(model_attrs)
        dataset = _Dataset(modality, data_provides)

        def feasible(assignment):
            for name, label in assignment:
                if name == "explainer":
                    try:
                        entry = ExplainerRegistry.entry(label)
                    except KeyError:
                        return False
                    if capability is not None and capability not in entry.capabilities:
                        return False
                    if not entry.is_compatible(model, dataset):
                        return False
                else:
                    if not set(required.get(label, ())) <= resources:
                        return False
            return True

        for cell in plan.emitted:
            assert feasible(cell.assignment), cell.cell_id
        for cell in plan.pruned:
            assert not feasible(cell.assignment), cell.cell_id
            assert cell.reasons  # nothing is pruned silently


class TestDefaultSpecsPruning:
    """The registered experiment specs' own partitions hold the same contract."""

    @pytest.mark.parametrize("experiment", ["E1/E2", "E3", "E4", "E5"])
    def test_emitted_cells_are_feasible(self, experiment):
        spec = SweepRegistry.get(experiment)
        plan = spec.plan()
        assert plan.raw_size == spec.raw_size()
        assert len(plan.emitted) + len(plan.pruned) == plan.raw_size
        for cell in plan.emitted:
            for name, label in cell.assignment:
                factor = spec.factor(name)
                assert set(factor.requires.get(label, ())) <= spec.resources
                if factor.registry:
                    entry = ExplainerRegistry.entry(label)
                    if factor.capability:
                        assert factor.capability in entry.capabilities
        for cell in plan.pruned:
            assert cell.reasons

    def test_numba_cells_gated_on_availability(self):
        from fairexp.explanations.kernels import numba_version

        plan = SweepRegistry.get("E1/E2").plan()
        numba_cells = [cell for cell in plan.emitted
                       if ("kernels", "numba") in cell.assignment]
        if numba_version() is None:
            assert not numba_cells
            assert any(("kernels", "numba") in cell.assignment
                       for cell in plan.pruned)
        else:
            assert numba_cells


class TestJournal:
    def _cell(self):
        spec = SweepSpec(experiment="J", runner=_noop_runner, fixed={"n": 1})
        return spec.cell()

    def _result(self, cell, value=1.0):
        return CellResult(cell_id=cell.cell_id, experiment=cell.experiment,
                          assignment=cell.assignment,
                          results={"metric": value, "engine_predict_calls": 9},
                          wall_time_seconds=0.1, stats={"predict_call_count": 9})

    def test_roundtrip(self, tmp_path):
        cell = self._cell()
        journal = SweepJournal(tmp_path / "j.json")
        assert journal.completed(cell) is None
        journal.record(cell, self._result(cell))
        reloaded = SweepJournal(tmp_path / "j.json")
        record = reloaded.completed(cell)
        assert record is not None and record["results"]["metric"] == 1.0

    def test_digest_mismatch_is_not_completed(self, tmp_path):
        spec = SweepSpec(experiment="J", runner=_noop_runner, fixed={"n": 1})
        journal = SweepJournal(tmp_path / "j.json")
        cell = spec.cell()
        journal.record(cell, self._result(cell))
        other = spec.cell(overrides={"n": 2})
        assert journal.completed(other) is None

    def test_corrupt_file_tolerated(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text("{not json")
        journal = SweepJournal(path)
        assert len(journal) == 0

    def test_reset_drops_records(self, tmp_path):
        cell = self._cell()
        journal = SweepJournal(tmp_path / "j.json")
        journal.record(cell, self._result(cell))
        journal.reset()
        assert journal.completed(cell) is None
        assert not (tmp_path / "j.json").exists()


class TestAccountingKeys:
    @pytest.mark.parametrize("key", [
        "predict_calls_biased", "engine_predict_calls_fair", "schedule_steps_biased",
        "schedule_draws_fair", "cf_reused_biased", "store_row_hits",
        "cache_hits", "pool_thread_created",
    ])
    def test_accounting(self, key):
        assert is_accounting_key(key)

    @pytest.mark.parametrize("key", [
        "burden_gap_biased", "nawb_gap_fair", "spd_baseline", "accuracy_base",
        "predict_backend",
    ])
    def test_metric(self, key):
        assert not is_accounting_key(key)


class TestExecution:
    def test_sweep_result_shape(self, tmp_path):
        spec = SweepSpec(experiment="X", runner=_noop_runner,
                         factors=(Factor("a", levels=("x", "y")),))
        result = run_sweep([spec], store=tmp_path / "store")
        assert [cell.cell_id for cell in result.cells] == ["X[a=x]", "X[a=y]"]
        assert result.summary()["emitted_cells"] == 2
        assert not any(cell.replayed for cell in result.cells)
        # journal published next to the store
        assert (tmp_path / "store" / "SWEEP_JOURNAL.json").exists()

    def test_jobs_parallel_matches_sequential(self):
        spec = SweepSpec(experiment="X", runner=_noop_runner,
                         factors=(Factor("a", levels=("x", "y", "z")),))
        sequential = run_sweep([spec])
        parallel = run_sweep([spec], jobs=3)
        assert {(c.cell_id, tuple(sorted(c.results))) for c in sequential.cells} \
            == {(c.cell_id, tuple(sorted(c.results))) for c in parallel.cells}

    def test_resume_requires_journal(self):
        spec = SweepSpec(experiment="X", runner=_noop_runner)
        with pytest.raises(ValidationError):
            run_sweep([spec], resume=True)

    def test_resume_flags_divergence(self, tmp_path):
        calls = []

        def flaky(**kwargs):
            calls.append(1)
            return {"metric": float(len(calls))}  # changes between runs

        spec = SweepSpec(experiment="X", runner=flaky)
        journal = tmp_path / "j.json"
        run_sweep([spec], journal=journal)
        resumed = run_sweep([spec], journal=journal, resume=True)
        assert resumed.cells[0].replayed
        assert resumed.cells[0].status == "diverged"
        assert resumed.summary()["diverged_cells"] == 1

    def test_on_cell_hook_sees_progress(self):
        spec = SweepSpec(experiment="X", runner=_noop_runner,
                         factors=(Factor("a", levels=("x", "y")),))
        seen = []
        run_sweep([spec], on_cell=lambda result, done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_store_injection_is_scoped(self, tmp_path):
        observed = {}

        def probe(**kwargs):
            observed["dir"] = active_store_dir()
            return {}

        spec = SweepSpec(experiment="X", runner=probe)
        run_sweep([spec], store=tmp_path / "s")
        assert observed["dir"] == str(tmp_path / "s")
        assert active_store_dir() is None  # reset after the cell

    def test_track_session_is_noop_outside_sweep(self):
        sentinel = object()
        assert track_session(sentinel) is sentinel


class TestRegistryAndCli:
    def test_all_experiments_derived_from_registry(self):
        from fairexp.experiments import ALL_EXPERIMENTS

        assert list(ALL_EXPERIMENTS) == SweepRegistry.ids()
        for experiment, runner in ALL_EXPERIMENTS.items():
            assert SweepRegistry.get(experiment).runner is runner

    def test_cli_run_choices_equal_registry(self, capsys):
        """`python -m fairexp run` derives its experiment list from the spec
        registry — the unknown-experiment error must enumerate exactly the
        registered ids (there is no second hand-maintained list to drift)."""
        from fairexp.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "definitely-not-an-experiment"])
        message = str(excinfo.value)
        for experiment in SweepRegistry.ids():
            assert experiment in message

    def test_every_registered_spec_has_a_feasible_default_cell(self):
        for spec in SweepRegistry.specs():
            cell = spec.cell()
            assert cell.experiment == spec.experiment

    def test_get_unknown_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="E1/E2"):
            SweepRegistry.get("nope")

    def test_duplicate_registration_rejected(self):
        spec = SweepSpec(experiment="FIG1", runner=_noop_runner)
        with pytest.raises(ValidationError):
            SweepRegistry.register(spec)

    def test_cli_sweep_plan_json_covers_registry(self, capsys):
        from fairexp.cli import main

        assert main(["sweep", "plan", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        planned = {cell_id.split("[")[0] for cell_id in payload["emitted"]}
        assert planned == set(SweepRegistry.ids())
        assert payload["summary"]["raw_cells"] == \
            payload["summary"]["emitted_cells"] + payload["summary"]["pruned_cells"]

    def test_cli_sweep_run_executes_and_journals(self, tmp_path, capsys):
        from fairexp.cli import main

        args = ["sweep", "run", "--spec", "FIG1", "--spec", "TAB1",
                "--store", str(tmp_path / "store"), "--json",
                "--bench", str(tmp_path / "bench.json")]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [cell["cell_id"] for cell in payload["cells"]] == ["FIG1", "TAB1"]
        bench = json.loads((tmp_path / "bench.json").read_text())
        assert len(bench) == 1 and bench[0]["emitted_cells"] == 2
        # resume replays both display cells and verifies their metrics
        resume_args = ["sweep", "resume", "--spec", "FIG1", "--spec", "TAB1",
                       "--store", str(tmp_path / "store"), "--json"]
        assert main(resume_args) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert all(cell["replayed"] for cell in resumed["cells"])
        assert all(cell["status"] == "completed" for cell in resumed["cells"])

    def test_sweep_plan_helper_combines_specs(self):
        plan = sweep_plan(["FIG1", "FIG2"])
        assert plan.raw_size == 2 and len(plan.emitted) == 2

    def test_unknown_spec_id_raises(self):
        with pytest.raises(ValidationError):
            sweep_plan(["nope"])
