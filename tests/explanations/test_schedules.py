"""Tests for the pluggable search schedules (geometric parity + adaptive wins)."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AdaptiveSchedule,
    AuditSession,
    BatchModelAdapter,
    CounterfactualEngine,
    GeometricSchedule,
    GrowingSpheresCounterfactual,
    RandomSearchCounterfactual,
    SearchSchedule,
    population_fingerprint,
    resolve_schedule,
)


@pytest.fixture
def workload(loan_data, loan_model, loan_cf_generator):
    dataset, train, test = loan_data
    rejected = test.X[np.flatnonzero(loan_model.predict(test.X) == 0)[:30]]
    return train, loan_model, loan_cf_generator.constraints, rejected


def _generator(generator_cls, train, model, constraints, **kwargs):
    return generator_cls(model, train.X, constraints=constraints, random_state=0,
                         **kwargs)


class TestResolveSchedule:
    def test_none_resolves_to_geometric_default(self):
        assert isinstance(resolve_schedule(None), GeometricSchedule)

    def test_names_resolve(self):
        assert isinstance(resolve_schedule("geometric"), GeometricSchedule)
        assert isinstance(resolve_schedule("adaptive"), AdaptiveSchedule)

    def test_instances_pass_through(self):
        schedule = AdaptiveSchedule(eager_hit_rate=0.25)
        assert resolve_schedule(schedule) is schedule

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            resolve_schedule("fibonacci")
        with pytest.raises(ValidationError):
            resolve_schedule(42)

    def test_base_schedule_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SearchSchedule().begin(4)


class TestGeometricParity:
    """GeometricSchedule must reproduce the pre-refactor fixed widening
    bitwise-exactly under fixed seeds — the tentpole's parity criterion."""

    @pytest.mark.parametrize("generator_cls", [
        GrowingSpheresCounterfactual, RandomSearchCounterfactual,
    ])
    def test_batched_geometric_equals_sequential_fixed_ladder(
            self, generator_cls, workload):
        train, model, constraints, rejected = workload
        sequential_generator = _generator(generator_cls, train, model, constraints)
        sequential = [sequential_generator.generate(row) for row in rejected]
        batched = _generator(generator_cls, train, model, constraints,
                             schedule=GeometricSchedule()).generate_batch_aligned(rejected)
        for seq, bat in zip(sequential, batched):
            assert bat is not None
            assert np.array_equal(seq.counterfactual, bat.counterfactual)
            assert seq.changed_features == bat.changed_features
            assert seq.distance == bat.distance

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_geometric_parity_across_executors(self, executor, workload):
        """Sharded geometric runs (threads AND processes) stay bitwise-equal
        to the sequential n_jobs=1 pass."""
        train, model, constraints, rejected = workload
        reference = CounterfactualEngine(
            _generator(GrowingSpheresCounterfactual, train, model, constraints),
            n_jobs=1,
        ).generate_aligned(rejected)
        sharded = CounterfactualEngine(
            _generator(GrowingSpheresCounterfactual, train, model, constraints),
            n_jobs=3, executor=executor,
        ).generate_aligned(rejected)
        for seq, par in zip(reference, sharded):
            assert (seq is None) == (par is None)
            if seq is not None:
                assert np.array_equal(seq.counterfactual, par.counterfactual)
                assert seq.distance == par.distance

    def test_explicit_schedule_argument_overrides_generator(self, workload):
        """lockstep_candidate_search(schedule=...) wins over generator.schedule."""
        from fairexp.explanations.engine import lockstep_candidate_search

        train, model, constraints, rejected = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                               schedule=AdaptiveSchedule())
        geometric_reference = _generator(
            GrowingSpheresCounterfactual, train, model, constraints
        ).generate_batch_aligned(rejected)
        overridden = lockstep_candidate_search(
            generator, rejected, generator._draw, len(generator.draw_schedule()),
            schedule=GeometricSchedule(),
        )
        for ref, got in zip(geometric_reference, overridden):
            assert np.array_equal(ref.counterfactual, got.counterfactual)


class TestAdaptiveSchedule:
    def test_fewer_steps_and_draws_than_geometric(self, workload):
        train, model, constraints, rejected = workload
        geometric = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        geometric.generate_batch_aligned(rejected)
        adaptive = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                              schedule=AdaptiveSchedule())
        results = adaptive.generate_batch_aligned(rejected)
        assert adaptive.search_step_count < geometric.search_step_count
        assert adaptive.search_draw_count < geometric.search_draw_count
        # Coverage must not collapse: the feasibility probe keeps every
        # instance that the widest shell can reach.
        assert sum(r is not None for r in results) == len(rejected)

    def test_fewer_predict_calls_than_geometric(self, workload):
        train, model, constraints, rejected = workload
        counts = {}
        for label, schedule in (("geometric", None), ("adaptive", AdaptiveSchedule())):
            adapter = BatchModelAdapter(model, cache=False)
            generator = _generator(GrowingSpheresCounterfactual, train, adapter,
                                   constraints, schedule=schedule)
            generator.generate_batch_aligned(rejected)
            counts[label] = adapter.predict_call_count
        assert counts["adaptive"] < counts["geometric"]

    def test_results_are_valid_counterfactuals(self, workload):
        train, model, constraints, rejected = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                               schedule="adaptive")
        for row, result in zip(rejected, generator.generate_batch_aligned(rejected)):
            assert result is not None
            assert result.counterfactual_prediction == generator.target_class
            assert result.feasible

    def test_adaptive_is_deterministic_under_fixed_seed(self, workload):
        train, model, constraints, rejected = workload
        first = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                           schedule=AdaptiveSchedule()).generate_batch_aligned(rejected)
        second = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                            schedule=AdaptiveSchedule()).generate_batch_aligned(rejected)
        for a, b in zip(first, second):
            assert np.array_equal(a.counterfactual, b.counterfactual)

    def test_infeasible_instances_abandoned_after_one_probe(self, loan_data):
        """Against an always-rejecting model the adaptive schedule spends one
        wave, not the whole ladder."""
        _, train, test = loan_data

        class AlwaysRejects:
            def predict(self, X):
                return np.zeros(np.atleast_2d(X).shape[0], dtype=int)

        geometric = GrowingSpheresCounterfactual(AlwaysRejects(), train.X,
                                                 random_state=0)
        geometric.generate_batch_aligned(test.X[:5])
        assert geometric.search_step_count == geometric.max_shells

        adaptive = GrowingSpheresCounterfactual(AlwaysRejects(), train.X,
                                                random_state=0,
                                                schedule=AdaptiveSchedule())
        results = adaptive.generate_batch_aligned(test.X[:5])
        assert adaptive.search_step_count == 1
        assert all(result is None for result in results)

    def test_cursor_bisection_brackets_the_boundary(self):
        """Unit-level cursor walk: miss raises lo, hit lowers hi, converges."""
        cursor = AdaptiveSchedule().begin(8)
        assert cursor.plan([0]) == {0: 7}          # feasibility probe
        cursor.observe(0, 7, n_hits=1, n_candidates=100)
        [(i, rung)] = cursor.plan([0]).items()
        assert (i, rung) == (0, 3)                 # bisect [0, 7)
        cursor.observe(0, 3, n_hits=0, n_candidates=100)
        [(_, rung)] = cursor.plan([0]).items()
        assert rung == 5                           # bisect [4, 7)
        cursor.observe(0, 5, n_hits=60, n_candidates=100)  # saturated hit
        [(_, rung)] = cursor.plan([0]).items()
        assert rung == 4                           # eager: lowest untested
        cursor.observe(0, 4, n_hits=0, n_candidates=100)
        assert 0 in cursor.finished                # bracket closed at 5

    def test_kernel_bounds_a_cursor_that_never_finishes(self, workload):
        """A buggy custom schedule that keeps replanning the same rung must
        terminate (unsolved), never hang the audit."""
        from fairexp.explanations.engine import lockstep_candidate_search

        train, model, constraints, rejected = workload

        class StuckSchedule(SearchSchedule):
            def begin(self, n_steps):
                class StuckCursor:
                    finished: set = set()

                    def plan(self, pending):
                        return {i: 0 for i in pending}  # forgets to finish

                    def observe(self, *args):
                        pass

                return StuckCursor()

        class NeverHits:
            def predict(self, X):
                return np.zeros(np.atleast_2d(X).shape[0], dtype=int)

        generator = GrowingSpheresCounterfactual(NeverHits(), train.X,
                                                 random_state=0)
        results = lockstep_candidate_search(
            generator, rejected[:3], generator._draw,
            len(generator.draw_schedule()), schedule=StuckSchedule(),
        )
        assert results == [None, None, None]
        assert generator.search_step_count <= 2 * generator.max_shells + 2

    def test_cursor_keeps_no_cross_instance_state(self):
        """An instance's probe sequence must not depend on which other
        instances share its batch — that is what keeps sharded adaptive
        runs bitwise-identical to sequential ones."""
        observations = [(11, 1), (5, 1), (2, 0)]  # (rung, hits) script

        def drive(cursor, instance, companions=()):
            rungs = []
            for rung, hits in observations:
                plan = cursor.plan([instance, *companions])
                rungs.append(plan[instance])
                cursor.observe(instance, plan[instance], hits, 100)
                for companion in companions:  # companions hit everywhere
                    cursor.observe(companion, plan[companion], 90, 100)
            return rungs

        alone = drive(AdaptiveSchedule().begin(12), 0)
        crowded = drive(AdaptiveSchedule().begin(12), 0, companions=(7, 8))
        assert alone == crowded == [11, 5, 2]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_adaptive_sharded_bitwise_equal_to_sequential(self, executor,
                                                          workload):
        """Per-instance-only cursor state makes sharded adaptive runs
        bitwise-identical to the sequential pass (like geometric)."""
        train, model, constraints, rejected = workload

        def build():
            return _generator(GrowingSpheresCounterfactual, train, model,
                              constraints, schedule=AdaptiveSchedule())

        sequential = CounterfactualEngine(build(), n_jobs=1).generate_aligned(rejected)
        sharded = CounterfactualEngine(build(), n_jobs=3,
                                       executor=executor).generate_aligned(rejected)
        for seq, par in zip(sequential, sharded):
            assert (seq is None) == (par is None)
            if seq is not None:
                assert np.array_equal(seq.counterfactual, par.counterfactual)
                assert seq.distance == par.distance


class TestScheduleAccounting:
    def test_session_stats_expose_schedule_counters(self, workload):
        train, model, constraints, rejected = workload
        session = AuditSession(
            _generator(GrowingSpheresCounterfactual, train, model, constraints)
        )
        session.counterfactuals_for(rejected, np.arange(len(rejected)))
        stats = session.stats()
        assert stats["schedule_steps"] > 0
        assert stats["schedule_draws"] > 0
        session.reset()
        assert session.stats()["schedule_steps"] == 0

    def test_process_sharded_counts_fold_back(self, workload):
        train, model, constraints, rejected = workload
        sequential = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        CounterfactualEngine(sequential, n_jobs=1).generate_aligned(rejected)
        sharded = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        CounterfactualEngine(sharded, n_jobs=2,
                             executor="process").generate_aligned(rejected)
        assert sharded.search_step_count > 0
        assert sharded.search_draw_count == sequential.search_draw_count

    def test_generatorless_session_reports_zero_schedule_activity(self, loan_model):
        session = AuditSession(model=loan_model)
        assert session.schedule_step_count == 0
        assert session.schedule_draw_count == 0


class TestScheduleFingerprinting:
    def test_schedules_key_the_store_separately(self, workload):
        """Geometric and adaptive results must never alias in the store."""
        train, model, constraints, rejected = workload
        geometric = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        adaptive = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                              schedule=AdaptiveSchedule())
        tweaked = _generator(GrowingSpheresCounterfactual, train, model, constraints,
                             schedule=AdaptiveSchedule(eager_hit_rate=0.9))
        prints = {population_fingerprint(g, rejected)
                  for g in (geometric, adaptive, tweaked)}
        assert None not in prints
        assert len(prints) == 3

    def test_session_schedule_argument_installs_on_generator(self, workload):
        train, model, constraints, rejected = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        session = AuditSession(generator, schedule="adaptive")
        assert isinstance(session.generator.schedule, AdaptiveSchedule)

    def test_schedule_swap_on_shared_generator_does_not_alias_entries(
            self, workload, tmp_path):
        """A second session installing a different schedule on a SHARED
        generator must not let the first session publish the new schedule's
        rows under its memoized old-schedule fingerprint."""
        from fairexp.explanations import CounterfactualStore

        train, model, constraints, rejected = workload
        generator = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        first = AuditSession(generator, schedule="geometric", store=tmp_path)
        first.counterfactuals_for(rejected, np.arange(6))
        store = CounterfactualStore(tmp_path)
        [geometric_entry] = store.entries()
        geometric_rows = len(store.load(geometric_entry))

        AuditSession(generator, schedule="adaptive", store=tmp_path)  # swaps it
        first.counterfactuals_for(rejected, np.arange(6, 12))  # new rows
        # The adaptive-searched rows landed in a NEW entry; the geometric
        # entry holds exactly the rows the geometric schedule produced.
        assert len(store.entries()) == 2
        assert len(store.load(geometric_entry)) == geometric_rows

    def test_draw_schedules_are_exposed(self, workload):
        train, model, constraints, _ = workload
        spheres = _generator(GrowingSpheresCounterfactual, train, model, constraints)
        assert len(spheres.draw_schedule()) == spheres.max_shells
        assert spheres.draw_schedule()[0][0] == 0.0
        random = _generator(RandomSearchCounterfactual, train, model, constraints)
        assert len(random.draw_schedule()) == random.n_radii
        assert random.draw_schedule() == sorted(random.draw_schedule())

    def test_model_only_session_rejects_schedule(self, loan_model):
        """A schedule on a generator-less session is a user error, not a
        silent no-op — there is no search for it to drive."""
        with pytest.raises(ValidationError):
            AuditSession(model=loan_model, schedule="adaptive")


class TestDegenerateLadders:
    """Both cursors must end the pass cleanly at the ladder edges
    (``n_steps == 0`` happens for a custom generator whose
    ``draw_schedule()`` is empty; ``n_steps == 1`` is the smallest real
    ladder)."""

    @pytest.mark.parametrize("schedule_cls", [GeometricSchedule, AdaptiveSchedule])
    def test_empty_ladder_plans_nothing(self, schedule_cls):
        cursor = schedule_cls().begin(0)
        plan = cursor.plan([0, 1, 2])
        assert plan == {}
        # No probe may ever name a negative rung — the pre-fix adaptive
        # cursor planned its feasibility probe at rung -1 here.
        assert all(rung >= 0 for rung in plan.values())
        # A second call stays empty: the pass is over, not looping.
        assert cursor.plan([0, 1, 2]) == {}

    @pytest.mark.parametrize("schedule_cls", [GeometricSchedule, AdaptiveSchedule])
    def test_single_rung_ladder_probes_rung_zero_only(self, schedule_cls):
        cursor = schedule_cls().begin(1)
        plan = cursor.plan([0, 1])
        assert set(plan.values()) == {0}
        for i, rung in plan.items():
            cursor.observe(i, rung, n_hits=1 if i == 0 else 0, n_candidates=4)
        # Hit or miss, a one-rung ladder finishes every instance in one wave.
        assert cursor.finished >= {0}
        follow_up = cursor.plan([i for i in (0, 1) if i not in cursor.finished])
        assert all(rung == 0 for rung in follow_up.values())

    def test_empty_draw_schedule_generator_ends_search(self, workload):
        """End-to-end: a generator whose ladder is empty produces an
        all-infeasible result instead of probing rung -1."""
        train, model, constraints, rejected = workload

        class NoLadderGenerator(RandomSearchCounterfactual):
            def draw_schedule(self):
                return []

        generator = _generator(NoLadderGenerator, train, model, constraints,
                               schedule=AdaptiveSchedule())
        results = generator.generate_batch_aligned(rejected[:4])
        assert results == [None, None, None, None]
