"""Tests for pre-, in- and post-processing mitigation."""

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.fairness import statistical_parity_difference, equal_opportunity_difference
from fairexp.fairness.mitigation import (
    FairLogisticRegression,
    GroupThresholdOptimizer,
    RecourseRegularizedClassifier,
    RejectOptionClassifier,
    disparate_impact_repair,
    massage_labels,
    reweighing_weights,
)
from fairexp.models import LogisticRegression


class TestReweighing:
    def test_weights_decorrelate_group_and_label(self, loan_data):
        dataset, train, _ = loan_data
        weights = reweighing_weights(train.y, train.sensitive_values)
        # Weighted base rates become equal across groups.
        protected = train.protected_mask
        weighted_rate_protected = np.average(train.y[protected], weights=weights[protected])
        weighted_rate_reference = np.average(train.y[~protected], weights=weights[~protected])
        assert weighted_rate_protected == pytest.approx(weighted_rate_reference, abs=1e-9)

    def test_weights_positive(self, loan_data):
        _, train, _ = loan_data
        weights = reweighing_weights(train.y, train.sensitive_values)
        assert np.all(weights > 0)

    def test_reweighed_training_reduces_parity_gap(self, loan_data, loan_model):
        _, train, test = loan_data
        weights = reweighing_weights(train.y, train.sensitive_values)
        reweighed = LogisticRegression(n_iter=1200, random_state=0).fit(
            train.X, train.y, sample_weight=weights
        )
        base_gap = abs(statistical_parity_difference(
            loan_model.predict(test.X), test.sensitive_values))
        new_gap = abs(statistical_parity_difference(
            reweighed.predict(test.X), test.sensitive_values))
        assert new_gap < base_gap


class TestMassaging:
    def test_equalizes_base_rates(self, loan_data):
        dataset, train, _ = loan_data
        massaged = massage_labels(train, LogisticRegression(n_iter=400))
        rates = massaged.base_rates()
        assert abs(rates[1] - rates[0]) < 0.05

    def test_preserves_total_positives(self, loan_data):
        _, train, _ = loan_data
        massaged = massage_labels(train, LogisticRegression(n_iter=400))
        assert massaged.y.sum() == pytest.approx(train.y.sum(), abs=1)

    def test_noop_when_protected_rate_already_higher(self, loan_data):
        _, train, _ = loan_data
        flipped = train.with_values(y=1 - train.y)  # invert so protected is favoured
        # After inversion the protected rate may exceed the reference rate; the
        # method must not demote the protected group.
        massaged = massage_labels(flipped, LogisticRegression(n_iter=200))
        assert massaged.base_rates()[1] >= flipped.base_rates()[1] - 1e-9


class TestDisparateImpactRepair:
    def test_full_repair_aligns_group_means(self, loan_data):
        _, train, _ = loan_data
        repaired = disparate_impact_repair(train, repair_level=1.0)
        protected = repaired.protected_mask
        income = repaired.column("income")
        assert abs(income[protected].mean() - income[~protected].mean()) < 2.0

    def test_zero_repair_is_identity(self, loan_data):
        _, train, _ = loan_data
        repaired = disparate_impact_repair(train, repair_level=0.0)
        assert np.allclose(repaired.X, train.X)

    def test_invalid_level_rejected(self, loan_data):
        _, train, _ = loan_data
        with pytest.raises(ValidationError):
            disparate_impact_repair(train, repair_level=2.0)

    def test_sensitive_column_untouched(self, loan_data):
        _, train, _ = loan_data
        repaired = disparate_impact_repair(train, repair_level=1.0)
        assert np.array_equal(repaired.sensitive_values, train.sensitive_values)


class TestInProcessing:
    def test_fair_logistic_reduces_parity(self, loan_data, loan_model):
        _, train, test = loan_data
        fair = FairLogisticRegression(fairness_weight=5.0, n_iter=1200, random_state=0).fit(
            train.X, train.y, sensitive=train.sensitive_values
        )
        base_gap = abs(statistical_parity_difference(
            loan_model.predict(test.X), test.sensitive_values))
        fair_gap = abs(statistical_parity_difference(
            fair.predict(test.X), test.sensitive_values))
        assert fair_gap < base_gap * 0.6

    def test_fair_logistic_keeps_reasonable_accuracy(self, loan_data, loan_model):
        _, train, test = loan_data
        fair = FairLogisticRegression(fairness_weight=5.0, n_iter=1200, random_state=0).fit(
            train.X, train.y, sensitive=train.sensitive_values
        )
        assert fair.score(test.X, test.y) > loan_model.score(test.X, test.y) - 0.15

    def test_fair_logistic_requires_sensitive(self, loan_data):
        _, train, _ = loan_data
        with pytest.raises(ValidationError):
            FairLogisticRegression().fit(train.X, train.y)

    def test_zero_weight_matches_plain_logistic_direction(self, loan_data):
        _, train, test = loan_data
        plain = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
        fair0 = FairLogisticRegression(fairness_weight=0.0, n_iter=800, random_state=0).fit(
            train.X, train.y, sensitive=train.sensitive_values
        )
        agreement = np.mean(plain.predict(test.X) == fair0.predict(test.X))
        assert agreement > 0.9

    def test_recourse_regularizer_shrinks_recourse_gap(self, loan_data, loan_model):
        _, train, test = loan_data
        regularized = RecourseRegularizedClassifier(
            recourse_weight=3.0, n_iter=1200, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values)
        base = RecourseRegularizedClassifier(
            recourse_weight=0.0, n_iter=1200, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values)
        assert regularized.group_recourse_gap(test.X, test.sensitive_values) <= (
            base.group_recourse_gap(test.X, test.sensitive_values) + 1e-6
        )

    def test_recourse_regularizer_requires_sensitive(self, loan_data):
        _, train, _ = loan_data
        with pytest.raises(ValidationError):
            RecourseRegularizedClassifier().fit(train.X, train.y)


class TestPostProcessing:
    def test_threshold_optimizer_statistical_parity(self, loan_data, loan_model):
        _, train, test = loan_data
        scores_train = loan_model.predict_proba(train.X)[:, 1]
        scores_test = loan_model.predict_proba(test.X)[:, 1]
        optimizer = GroupThresholdOptimizer(criterion="statistical_parity").fit(
            scores_train, train.y, train.sensitive_values
        )
        adjusted = optimizer.predict(scores_test, test.sensitive_values)
        base_gap = abs(statistical_parity_difference(
            (scores_test >= 0.5).astype(int), test.sensitive_values))
        new_gap = abs(statistical_parity_difference(adjusted, test.sensitive_values))
        assert new_gap < base_gap

    def test_threshold_optimizer_equal_opportunity(self, loan_data, loan_model):
        _, train, test = loan_data
        scores_train = loan_model.predict_proba(train.X)[:, 1]
        scores_test = loan_model.predict_proba(test.X)[:, 1]
        optimizer = GroupThresholdOptimizer(criterion="equal_opportunity").fit(
            scores_train, train.y, train.sensitive_values
        )
        adjusted = optimizer.predict(scores_test, test.sensitive_values)
        base_gap = abs(equal_opportunity_difference(
            test.y, (scores_test >= 0.5).astype(int), test.sensitive_values))
        new_gap = abs(equal_opportunity_difference(test.y, adjusted, test.sensitive_values))
        assert new_gap <= base_gap + 0.05

    def test_threshold_optimizer_unknown_criterion(self):
        with pytest.raises(ValidationError):
            GroupThresholdOptimizer(criterion="nope")

    def test_reject_option_flips_only_in_critical_band(self, loan_data, loan_model):
        _, _, test = loan_data
        scores = loan_model.predict_proba(test.X)[:, 1]
        adjusted = RejectOptionClassifier(margin=0.1).predict(scores, test.sensitive_values)
        outside = np.abs(scores - 0.5) >= 0.1
        assert np.array_equal(adjusted[outside], (scores[outside] >= 0.5).astype(int))

    def test_reject_option_reduces_parity_gap(self, loan_data, loan_model):
        _, _, test = loan_data
        scores = loan_model.predict_proba(test.X)[:, 1]
        base = (scores >= 0.5).astype(int)
        adjusted = RejectOptionClassifier(margin=0.2).predict(scores, test.sensitive_values)
        assert abs(statistical_parity_difference(adjusted, test.sensitive_values)) <= abs(
            statistical_parity_difference(base, test.sensitive_values)
        )

    def test_reject_option_invalid_margin(self):
        with pytest.raises(ValidationError):
            RejectOptionClassifier(margin=0.7)
