"""Approximation-based explanations: local linear surrogates and global tree surrogates."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..models.tree import DecisionTreeClassifier
from ..utils import check_random_state
from .base import ExplainerInfo, FeatureAttribution

__all__ = ["LocalSurrogateExplainer", "GlobalSurrogateTree"]


class LocalSurrogateExplainer:
    """LIME-style local surrogate: weighted ridge regression around the explainee.

    Perturbations are drawn from a Gaussian around the explainee (scaled by
    the background standard deviation), weighted by an RBF kernel on the
    distance to the explainee, and a ridge-regularized linear model is fitted
    to the model's positive-class probability.  The coefficients are the
    local feature attributions.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="local",
        explanation_type="approximation",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        n_samples: int = 500,
        kernel_width: float | None = None,
        ridge: float = 1e-3,
        feature_names: Sequence[str] | None = None,
        random_state=None,
    ) -> None:
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.n_samples = n_samples
        self.kernel_width = kernel_width
        self.ridge = ridge
        self.feature_names = feature_names
        self.random_state = random_state

    def explain(self, x: np.ndarray) -> FeatureAttribution:
        """Return local linear coefficients approximating the model around ``x``."""
        x = np.asarray(x, dtype=float).ravel()
        rng = check_random_state(self.random_state)
        scale = self.background.std(axis=0)
        scale[scale == 0] = 1.0

        perturbations = x[None, :] + rng.normal(0.0, 1.0, (self.n_samples, x.shape[0])) * scale
        predictions = np.asarray(self.model.predict_proba(perturbations))[:, 1]

        standardized = (perturbations - x[None, :]) / scale
        distances = np.linalg.norm(standardized, axis=1)
        width = self.kernel_width or np.sqrt(x.shape[0]) * 0.75
        weights = np.exp(-(distances**2) / (width**2))

        design = np.column_stack([standardized, np.ones(self.n_samples)])
        weighted_design = design * weights[:, None]
        gram = design.T @ weighted_design + self.ridge * np.eye(design.shape[1])
        moment = design.T @ (weights * predictions)
        coefficients = np.linalg.solve(gram, moment)

        names = (
            list(self.feature_names)
            if self.feature_names is not None
            else [f"x{j}" for j in range(x.shape[0])]
        )
        local_prediction = float(np.asarray(self.model.predict_proba(x[None, :]))[:, 1][0])
        return FeatureAttribution(
            feature_names=names,
            values=coefficients[:-1],
            baseline=float(coefficients[-1]),
            meta={"local_prediction": local_prediction, "kernel_width": width},
        )


class GlobalSurrogateTree:
    """Fit an interpretable decision tree to mimic a black-box model globally."""

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="approximation",
        multiplicity="multiple",
    )

    def __init__(self, model, *, max_depth: int = 4, feature_names=None, random_state=None) -> None:
        self.model = model
        self.max_depth = max_depth
        self.feature_names = feature_names
        self.random_state = random_state
        self.tree_: DecisionTreeClassifier | None = None
        self.fidelity_: float | None = None

    def fit(self, X) -> "GlobalSurrogateTree":
        """Train the surrogate on the model's own predictions over ``X``."""
        X = np.asarray(X, dtype=float)
        predictions = np.asarray(self.model.predict(X)).astype(int)
        self.tree_ = DecisionTreeClassifier(max_depth=self.max_depth, random_state=self.random_state)
        self.tree_.fit(X, predictions)
        self.fidelity_ = float(np.mean(self.tree_.predict(X) == predictions))
        return self

    def rules(self) -> list[str]:
        """Return the surrogate's decision rules (one per leaf)."""
        if self.tree_ is None:
            raise RuntimeError("call fit() before rules()")
        return self.tree_.export_rules(self.feature_names)

    def feature_importances(self) -> FeatureAttribution:
        """Gini importance of the surrogate tree as a global approximation."""
        if self.tree_ is None:
            raise RuntimeError("call fit() before feature_importances()")
        names = (
            list(self.feature_names)
            if self.feature_names is not None
            else [f"x{j}" for j in range(self.tree_.n_features_)]
        )
        return FeatureAttribution(
            feature_names=names,
            values=self.tree_.feature_importances_,
            meta={"fidelity": self.fidelity_},
        )
