"""Persistent executor pools for sharded search — per session or process-wide.

Before this module existed, every sharded
:meth:`~fairexp.explanations.engine.CounterfactualEngine.generate_aligned`
call constructed (and tore down) its own ``ThreadPoolExecutor`` or
``ProcessPoolExecutor``.  Thread pools make that merely wasteful; process
pools make it expensive — each call re-spawned workers, re-imported numpy
and re-unpickled the model, easily dwarfing the shard work itself on the
multi-audit sweeps an :class:`~fairexp.explanations.session.AuditSession`
runs.

:class:`ExecutorPool` amortizes that: one pool object owns at most one live
executor per kind (``"thread"`` / ``"process"``), created lazily on first
use and reused by every subsequent sharded pass — an
:class:`~fairexp.explanations.session.AuditSession` builds one pool and
threads it into every engine call, so a whole sweep with
``executor="process"`` constructs exactly **one** ``ProcessPoolExecutor``
(asserted via a counting factory double in
``tests/explanations/test_pool.py``).  Shard *results* are unaffected:
shards are deterministic and every instance seeds its own random stream, so
pooled and per-call execution are bitwise-identical.

Two features make one pool safe to share across **concurrent** sessions of
one process (the ROADMAP's pool follow-on):

* **Generation tracking** — every executor lives in a generation record
  that counts in-flight :meth:`~ExecutorPool.map` passes.  ``reset()``
  retires the record (the next request builds a fresh executor) but defers
  the actual ``shutdown`` until the last in-flight pass drains, so one
  session observing a broken process pool can never shut an executor out
  from under another session's running ``map``.
* :meth:`ExecutorPool.shared` — a refcounted process-wide pool:  every
  acquisition returns the same :class:`SharedExecutorPool` and bumps its
  refcount; :meth:`~SharedExecutorPool.shutdown` (what a session's
  ``close()`` calls) releases one reference, and only the last release
  tears the workers down.  N concurrent process-sharded sessions therefore
  construct exactly one ``ProcessPoolExecutor`` between them (asserted in
  ``benchmarks/test_bench_serving.py``).

Shutdown is deterministic: pools are context managers, and the session's
own context-manager exit closes (or, for the shared pool, releases) the
pool it created.  A broken process pool (e.g. a worker killed mid-sweep) is
:meth:`~ExecutorPool.reset` by the engine, which then falls back to thread
sharding for that call; the next process-sharded call lazily builds a fresh
pool.  :meth:`~ExecutorPool.stats` exposes utilization — busy workers and
queue depth per kind — which sessions fold into their own ``stats()``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from ..exceptions import ValidationError
from ..lint.tsan import guard_counters, make_lock

__all__ = ["ExecutorPool", "SharedExecutorPool"]

_KINDS = ("thread", "process")


@guard_counters("inflight", "pending", "peak_pending", lock_attr="_tsan_lock")
class _ExecutorRecord:
    """One executor generation: the live executor plus its usage counters.

    ``inflight`` counts :meth:`ExecutorPool.map` passes currently running on
    this executor; ``pending`` counts submitted-but-unfinished tasks (the
    busy-worker/queue-depth observable).  A retired record (its pool called
    ``reset``) shuts its executor down only once ``inflight`` drains to
    zero, so resets never yank an executor from under a running pass.
    """

    __slots__ = ("executor", "kind", "generation", "workers", "inflight",
                 "pending", "peak_pending", "retired", "_tsan_lock",
                 "__weakref__")

    def __init__(self, executor, kind: str, generation: int, workers: int,
                 lock=None) -> None:
        # The owning pool's lock, exposed so the FAIREXP_TSAN counter guard
        # can verify mutations happen under it (None outside tsan runs).
        self._tsan_lock = lock
        self.executor = executor
        self.kind = kind
        self.generation = generation
        self.workers = workers
        self.inflight = 0
        self.pending = 0
        self.peak_pending = 0
        self.retired = False


class ExecutorPool:
    """Lazy, reusable thread/process executor pair with deterministic shutdown.

    Parameters
    ----------
    max_workers:
        Worker count for each executor this pool creates.  ``None`` (the
        default) sizes executors to the machine: ``os.cpu_count()``.
        Sizing is fixed at creation — a later request needing more shards
        than workers simply queues them, which cannot change results
        (shards are deterministic and independent).
    thread_factory, process_factory:
        Executor constructors, injectable so tests can count constructions
        or substitute doubles.  Defaults are the ``concurrent.futures``
        classes.

    Attributes
    ----------
    created_counts:
        Mapping ``kind -> number of executors constructed`` over the pool's
        lifetime — the observable the "exactly one ProcessPoolExecutor per
        session sweep" acceptance test asserts on.
    """

    def __init__(self, *, max_workers: int | None = None,
                 thread_factory=ThreadPoolExecutor,
                 process_factory=ProcessPoolExecutor) -> None:
        self.max_workers = max_workers
        self._factories = {"thread": thread_factory, "process": process_factory}
        self._records: dict[str, _ExecutorRecord] = {}
        self.created_counts: dict[str, int] = {kind: 0 for kind in _KINDS}
        self._generation = 0
        self._lock = make_lock()
        self._closed = False

    @staticmethod
    def ensure(pool) -> "ExecutorPool":
        """Coerce ``pool`` (an :class:`ExecutorPool`, ``"shared"`` or
        ``None``) to a pool.

        ``None`` builds a fresh private pool; the string ``"shared"``
        acquires (a reference on) the process-wide :meth:`shared` pool.
        """
        if pool is None:
            return ExecutorPool()
        if pool == "shared":
            return ExecutorPool.shared()
        if not isinstance(pool, ExecutorPool):
            raise ValidationError(
                f"pool must be an ExecutorPool, 'shared' or None, "
                f"got {type(pool).__name__}"
            )
        return pool

    @classmethod
    def shared(cls, **kwargs) -> "SharedExecutorPool":
        """Acquire the process-wide refcounted pool (see
        :class:`SharedExecutorPool`).

        Keyword arguments (``max_workers`` and the factories) configure the
        pool only when this acquisition *creates* it; passing configuration
        while the shared pool is already alive raises instead of silently
        ignoring it.  Every successful call must be balanced by one
        :meth:`~SharedExecutorPool.shutdown` (or ``release``) — sessions
        built with ``pool="shared"`` do this from their own ``close()``.
        """
        with _shared_lock:
            global _shared_pool
            if _shared_pool is None:
                _shared_pool = SharedExecutorPool(**kwargs)
            elif kwargs:
                raise ValidationError(
                    "the shared ExecutorPool is already running; its "
                    "configuration cannot be changed until every holder "
                    "has released it"
                )
            _shared_pool._refcount += 1
            return _shared_pool

    # ------------------------------------------------------------ executors
    def _record(self, kind: str, *, lease: bool = False) -> _ExecutorRecord:
        """The live record of ``kind``, created lazily (caller holds no lock).

        With ``lease=True`` the in-flight count is taken under the same
        lock acquisition that resolved the record, so a concurrent
        :meth:`reset` can never observe the record lease-free and shut its
        executor down between resolution and the lease being taken.
        """
        if kind not in _KINDS:
            raise ValidationError(f"executor kind must be one of {_KINDS}, got {kind!r}")
        with self._lock:
            if self._closed:
                raise ValidationError("ExecutorPool is closed")
            record = self._records.get(kind)
            if record is None:
                workers = self.max_workers or os.cpu_count() or 1
                self._generation += 1
                record = _ExecutorRecord(self._factories[kind](max_workers=workers),
                                         kind, self._generation, workers,
                                         lock=self._lock)
                self._records[kind] = record
                self.created_counts[kind] += 1
            if lease:
                record.inflight += 1
            return record

    def executor(self, kind: str):
        """The live executor of ``kind`` (``"thread"`` / ``"process"``),
        created lazily on first request and reused afterwards.

        Prefer :meth:`map` for sharded passes: direct executor access is
        not generation-tracked, so a concurrent ``reset`` may shut the
        returned executor down mid-use.
        """
        return self._record(kind).executor

    def map(self, kind: str, fn, *iterables) -> list:
        """Run ``fn`` over ``zip(*iterables)`` on the ``kind`` executor.

        Equivalent to ``list(executor.map(fn, *iterables))`` — results in
        input order, the first raising task re-raising here — but
        generation-safe and instrumented: the pass holds an in-flight lease
        on its executor (a concurrent :meth:`reset` defers the shutdown
        until the pass drains) and per-task completion feeds the
        busy-worker / queue-depth numbers :meth:`stats` reports.
        """
        record = self._record(kind, lease=True)
        try:
            def task_done(_future, record=record):
                with self._lock:
                    record.pending -= 1

            futures = []
            for args in zip(*iterables):
                with self._lock:
                    record.pending += 1
                    record.peak_pending = max(record.peak_pending, record.pending)
                try:
                    future = record.executor.submit(fn, *args)
                except RuntimeError as error:
                    # A concurrent shutdown() closed this executor between
                    # our lease and the submit; surface it as the pool-level
                    # error every other closed-pool path raises.  (A reset()
                    # can never trigger this — retired executors drain their
                    # leases before shutting down.)
                    with self._lock:
                        record.pending -= 1
                        closed = self._closed
                    for submitted in futures:
                        submitted.cancel()
                    if closed:
                        raise ValidationError("ExecutorPool is closed") from error
                    raise
                future.add_done_callback(task_done)
                futures.append(future)
            return [future.result() for future in futures]
        finally:
            self._release_lease(record)

    def _release_lease(self, record: _ExecutorRecord) -> None:
        with self._lock:
            record.inflight -= 1
            shutdown_now = record.retired and record.inflight == 0
        if shutdown_now:
            record.executor.shutdown(wait=False, cancel_futures=True)

    def active_kinds(self) -> list[str]:
        """Kinds whose executor is currently alive (constructed, not reset)."""
        with self._lock:
            return sorted(self._records)

    def pending(self, kind: str) -> int:
        """Submitted-but-unfinished tasks on the ``kind`` executor right now.

        This is the instantaneous load gauge (busy workers + queued tasks)
        that admission-control callers — e.g. a
        :class:`~fairexp.explanations.serving.ScoringServer` running its
        scorers on an attached pool — compare against their shed bound.
        ``0`` when the kind has no live executor.
        """
        if kind not in _KINDS:
            raise ValidationError(f"executor kind must be one of {_KINDS}, got {kind!r}")
        with self._lock:
            record = self._records.get(kind)
            return record.pending if record is not None else 0

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-kind pool utilization: executors created over the pool's
        lifetime, configured workers, busy workers and queue depth.

        ``busy_workers`` is the number of workers currently executing a
        task (pending tasks capped at the worker count); ``queue_depth`` is
        how many submitted tasks are waiting for a free worker; both are
        ``0`` for kinds without a live executor.  ``peak_pending`` is the
        high-water mark of submitted-but-unfinished tasks over the live
        executor's lifetime — the saturation observable the sustained-load
        serving benchmark records.
        """
        with self._lock:
            stats: dict[str, dict[str, int]] = {}
            for kind in _KINDS:
                record = self._records.get(kind)
                pending = record.pending if record is not None else 0
                workers = record.workers if record is not None else 0
                stats[kind] = {
                    "executors_created": self.created_counts[kind],
                    "workers": workers,
                    "busy_workers": min(pending, workers),
                    "queue_depth": max(0, pending - workers),
                    "peak_pending": record.peak_pending if record is not None else 0,
                }
            return stats

    # ------------------------------------------------------------- lifecycle
    def reset(self, kind: str) -> None:
        """Retire one executor so the next request builds a fresh one.

        This is the engine's escape hatch for a broken process pool: the
        record is forgotten immediately (new requests get a new generation)
        but the dead executor is only shut down once every in-flight
        :meth:`map` pass on it has drained — a reset can never yank an
        executor out from under another session's running pass.
        """
        with self._lock:
            record = self._records.pop(kind, None)
            if record is None:
                return
            record.retired = True
            shutdown_now = record.inflight == 0
        if shutdown_now:
            record.executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every live executor; the pool refuses further use."""
        with self._lock:
            records = list(self._records.values())
            self._records.clear()
            self._closed = True
        for record in records:
            record.executor.shutdown(wait=wait)

    def __del__(self):
        # Best-effort backstop for callers that never reach close()/__exit__:
        # when the last reference to the pool (typically its owning
        # AuditSession) is collected, live workers are shut down instead of
        # lingering until interpreter exit.  Deterministic teardown still
        # belongs to the context manager / shutdown().
        try:
            self.shutdown(wait=False)
        except Exception:  # fairexp: noqa[FX004] - __del__ must never raise
            pass

    def __enter__(self) -> "ExecutorPool":
        """Enter a ``with`` block; the pool shuts down on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministically shut down all executors on block exit."""
        self.shutdown()

    def __repr__(self) -> str:
        state = "closed" if self._closed else ",".join(self.active_kinds()) or "idle"
        return f"ExecutorPool(max_workers={self.max_workers}, {state})"


class SharedExecutorPool(ExecutorPool):
    """The process-wide refcounted pool behind :meth:`ExecutorPool.shared`.

    Behaves exactly like an :class:`ExecutorPool` except for teardown:
    :meth:`shutdown` releases one reference, and only the release that
    drops the refcount to zero actually stops the executors (and clears the
    process-wide slot so the next :meth:`~ExecutorPool.shared` acquisition
    builds a fresh pool).  This is what lets N concurrent sessions pass
    ``pool="shared"``, each ``close()`` their session normally, and still
    construct exactly one ``ProcessPoolExecutor`` between them.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self._refcount = 0

    @property
    def refcount(self) -> int:
        """Live references (acquisitions not yet released)."""
        with _shared_lock:
            return self._refcount

    def shutdown(self, wait: bool = True) -> None:
        """Release one reference; the last release shuts the workers down."""
        with _shared_lock:
            global _shared_pool
            if self._refcount > 0:
                self._refcount -= 1
            if self._refcount > 0:
                return
            if _shared_pool is self:
                _shared_pool = None
        super().shutdown(wait=wait)

    release = shutdown

    def __repr__(self) -> str:
        return super().__repr__().replace(
            "ExecutorPool(", f"SharedExecutorPool(refcount={self._refcount}, ", 1
        )


_shared_pool: SharedExecutorPool | None = None
_shared_lock = threading.Lock()
