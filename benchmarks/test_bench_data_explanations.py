"""E9: Gopher-style data-based explanations [63, 83]."""

from conftest import record

from fairexp.experiments import run_e9_data_explanations


def test_gopher_patterns_reduce_unfairness(benchmark):
    results = record(benchmark, benchmark.pedantic(
        run_e9_data_explanations, kwargs={"n_samples": 600}, rounds=1, iterations=1,
    ), experiment="E9")
    # The baseline model is unfair against the protected group.
    assert results["baseline_unfairness"] < -0.05
    # Removing the top pattern reduces |unfairness| noticeably, the estimate is
    # verified exactly by retraining, and the top pattern beats the average of
    # the returned top-k patterns (ranking is informative).
    assert results["best_reduction"] > 0.03
    assert abs(results["verified_new_unfairness"]) < abs(results["baseline_unfairness"])
    assert results["best_reduction"] >= results["mean_topk_reduction"] - 1e-9
    # Patterns are compact slices, not the whole dataset.
    assert results["best_support"] < 0.6
