"""Bitwise-parity, dispatch and integration tests for the hot-path kernels.

The contract of :mod:`fairexp.explanations.kernels` is exactness: every
kernel reproduces the pre-kernel loop implementations bit for bit, and the
numba fast path (when installed) reproduces the NumPy reference bit for bit
on the workload families of every experiment (E1–E9).  The pre-kernel loops
are kept verbatim in this module as the parity oracle.
"""

import warnings

import numpy as np
import pytest

from fairexp.datasets import make_adult_like, make_loan_dataset, make_scm_loan_dataset
from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    ActionabilityConstraints,
    AuditSession,
    CounterfactualEngine,
    GrowingSpheresCounterfactual,
    KernelSet,
    RandomSearchCounterfactual,
    active_kernel_info,
    batch_counterfactual_distance,
    build_prefix_revert_trials,
    counterfactual_distance,
    generator_config,
    project_candidates,
    rank_changed_features,
    resolve_kernels,
)
from fairexp.explanations import kernels as kernels_module
from fairexp.explanations.engine import _process_shard_spec
from fairexp.explanations.kernels import (
    _NUMBA_SET,
    _NUMPY_SET,
    NUMBA_MAX_REDUCE_FEATURES,
    numba_version,
)
from fairexp.models import LogisticRegression

HAVE_NUMBA = numba_version() is not None
needs_numba = pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")

KERNEL_SETS = [pytest.param(_NUMPY_SET, id="numpy"),
               pytest.param(_NUMBA_SET, id="numba",
                            marks=needs_numba)]


# --------------------------------------------------------------------------
# The pre-kernel loop implementations, kept verbatim as the parity oracle.
# --------------------------------------------------------------------------
def legacy_distance(x, x_prime, *, scale=None, metric="l1"):
    x = np.asarray(x, dtype=float)
    x_prime = np.asarray(x_prime, dtype=float)
    delta = x_prime - x
    if scale is not None:
        scale = np.asarray(scale, dtype=float).copy()
        scale[scale == 0] = 1.0
        delta = delta / scale
    if metric == "l1":
        return float(np.sum(np.abs(delta)))
    if metric == "l2":
        return float(np.linalg.norm(delta))
    if metric == "l0":
        return float(np.sum(~np.isclose(delta, 0.0)))
    raise ValidationError(f"unknown metric {metric!r}")


def legacy_project(constraints, x_original, candidate):
    candidate = np.asarray(candidate, dtype=float)
    x_original = np.asarray(x_original, dtype=float)
    lower = np.where(np.isnan(constraints.lower), -np.inf, constraints.lower)
    upper = np.where(np.isnan(constraints.upper), np.inf, constraints.upper)
    projected = np.clip(candidate, lower, upper)
    originals = np.broadcast_to(x_original, projected.shape)
    projected = np.where(constraints.monotone == 1,
                         np.maximum(projected, originals), projected)
    projected = np.where(constraints.monotone == -1,
                         np.minimum(projected, originals), projected)
    return np.where(constraints.immutable, originals, projected)


def legacy_prefix_trials(candidate, x_row, order):
    trial = candidate.copy()
    rows = []
    for column in order:
        trial[column] = x_row[column]
        rows.append(trial.copy())
    return np.stack(rows)


def legacy_rank_changed(X_rows, candidates, scale):
    orders = []
    for k in range(candidates.shape[0]):
        delta = candidates[k] - X_rows[k]
        changed = np.flatnonzero(~np.isclose(candidates[k], X_rows[k]))
        ranked = changed[np.argsort(np.abs(delta / scale)[changed])]
        orders.append(ranked)
    return orders


def _random_constraints(rng, d):
    lower = rng.normal(size=d) - 2.0
    upper = lower + rng.uniform(0.5, 3.0, size=d)
    lower[rng.random(d) < 0.3] = -np.inf
    upper[rng.random(d) < 0.3] = np.inf
    lower[rng.random(d) < 0.2] = np.nan  # NaN = unbounded, as the specs allow
    upper[rng.random(d) < 0.2] = np.nan
    return ActionabilityConstraints(
        immutable=rng.random(d) < 0.3,
        lower=lower,
        upper=upper,
        monotone=rng.integers(-1, 2, size=d),
    )


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


# --------------------------------------------------------------------------
# Bitwise parity against the pre-kernel loops (both kernel sets).
# --------------------------------------------------------------------------
@pytest.mark.parametrize("kernel_set", KERNEL_SETS)
class TestLegacyParity:
    @pytest.mark.parametrize("metric", ["l1", "l2", "l0"])
    @pytest.mark.parametrize("use_scale", [False, True])
    def test_distance_matches_scalar_loop(self, kernel_set, metric, use_scale, rng):
        X = rng.normal(size=(120, 7))
        candidates = X + rng.normal(size=X.shape) * rng.random(X.shape)
        scale = None
        if use_scale:
            scale = rng.uniform(0.0, 2.0, size=7)
            scale[0] = 0.0  # zero scale must be sanitized to 1, as before
        expected = np.array([
            legacy_distance(x, c, scale=scale, metric=metric)
            for x, c in zip(X, candidates)
        ])
        got = kernel_set.batch_counterfactual_distance(
            X, candidates, scale=scale, metric=metric)
        assert got.dtype == np.float64
        assert np.array_equal(got, expected)

    def test_distance_single_x_broadcast(self, kernel_set, rng):
        x = rng.normal(size=5)
        candidates = x + rng.normal(size=(40, 5))
        expected = np.array([legacy_distance(x, c) for c in candidates])
        assert np.array_equal(
            kernel_set.batch_counterfactual_distance(x, candidates), expected)

    def test_distance_unknown_metric_raises(self, kernel_set, rng):
        with pytest.raises(ValidationError, match="unknown metric"):
            kernel_set.batch_counterfactual_distance(
                np.zeros((2, 3)), np.ones((2, 3)), metric="linf")

    @pytest.mark.parametrize("shape", ["wave", "matrix", "aligned", "single"])
    def test_project_matches_where_cascade(self, kernel_set, shape, rng):
        d = 6
        constraints = _random_constraints(rng, d)
        if shape == "wave":  # the lockstep engine's (n, c, d) tensor
            candidates = rng.normal(size=(9, 14, d)) * 3
            x_original = rng.normal(size=(9, 1, d))
        elif shape == "matrix":  # one instance, many candidates
            candidates = rng.normal(size=(25, d)) * 3
            x_original = rng.normal(size=d)
        elif shape == "aligned":  # row-aligned pairs
            candidates = rng.normal(size=(25, d)) * 3
            x_original = rng.normal(size=(25, d))
        else:  # single row
            candidates = rng.normal(size=d) * 3
            x_original = rng.normal(size=d)
        expected = legacy_project(constraints, x_original, candidates)
        got = kernel_set.project_candidates(
            x_original, candidates, immutable=constraints.immutable,
            lower=constraints.lower, upper=constraints.upper,
            monotone=constraints.monotone)
        assert got.shape == expected.shape
        assert np.array_equal(got, expected)

    def test_prefix_trials_match_copy_chain(self, kernel_set, rng):
        for d in (1, 4, 9):
            x_row = rng.normal(size=d)
            candidate = x_row + rng.normal(size=d)
            order = rng.permutation(d)[: max(1, d - 1)]
            expected = legacy_prefix_trials(candidate, x_row, list(order))
            got = kernel_set.build_prefix_revert_trials(candidate, x_row, order)
            assert np.array_equal(got, expected)
            # and into a caller-provided slab
            out = np.empty((len(order), d))
            returned = kernel_set.build_prefix_revert_trials(
                candidate, x_row, order, out=out)
            assert returned is out
            assert np.array_equal(out, expected)

    def test_rank_matches_per_row_loop(self, kernel_set, rng):
        X_rows = rng.normal(size=(30, 6))
        candidates = X_rows.copy()
        mask = rng.random(candidates.shape) < 0.6
        candidates[mask] += rng.normal(size=candidates.shape)[mask]
        # duplicate magnitudes exercise unstable-argsort tie order
        candidates[:, 3] = candidates[:, 2]
        X_rows[:, 3] = X_rows[:, 2]
        scale = rng.uniform(0.5, 2.0, size=6)
        expected = legacy_rank_changed(X_rows, candidates, scale)
        got = kernel_set.rank_changed_features(X_rows, candidates, scale)
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------
# Edge cases (both kernel sets).
# --------------------------------------------------------------------------
@pytest.mark.parametrize("kernel_set", KERNEL_SETS)
class TestEdgeCases:
    def test_empty_candidate_set(self, kernel_set):
        empty = np.empty((0, 4))
        distances = kernel_set.batch_counterfactual_distance(np.zeros(4), empty)
        assert distances.shape == (0,)
        assert kernel_set.rank_changed_features(np.empty((0, 4)), empty,
                                                np.ones(4)) == []
        trials = kernel_set.build_prefix_revert_trials(
            np.zeros(4), np.ones(4), np.array([], dtype=int))
        assert trials.shape == (0, 4)

    def test_all_immutable_returns_originals(self, kernel_set, rng):
        d = 5
        constraints = ActionabilityConstraints(
            immutable=np.ones(d, dtype=bool),
            lower=np.full(d, -np.inf), upper=np.full(d, np.inf),
            monotone=np.zeros(d, dtype=int))
        x = rng.normal(size=(4, 1, d))
        candidates = rng.normal(size=(4, 8, d))
        projected = kernel_set.project_candidates(
            x, candidates, immutable=constraints.immutable,
            lower=constraints.lower, upper=constraints.upper,
            monotone=constraints.monotone)
        assert np.array_equal(projected, np.broadcast_to(x, candidates.shape))

    def test_single_feature_rows(self, kernel_set, rng):
        X = rng.normal(size=(10, 1))
        candidates = X + rng.normal(size=(10, 1))
        expected = np.array([legacy_distance(x, c) for x, c in zip(X, candidates)])
        assert np.array_equal(
            kernel_set.batch_counterfactual_distance(X, candidates), expected)
        orders = kernel_set.rank_changed_features(X, candidates, np.ones(1))
        assert all(np.array_equal(o, np.array([0])) for o in orders)

    def test_float32_inputs_upcast_to_float64(self, kernel_set, rng):
        X32 = rng.normal(size=(12, 5)).astype(np.float32)
        C32 = (X32 + rng.normal(size=(12, 5)).astype(np.float32)).astype(np.float32)
        got = kernel_set.batch_counterfactual_distance(X32, C32)
        assert got.dtype == np.float64
        expected = np.array([
            legacy_distance(x, c) for x, c in zip(X32, C32)
        ])
        assert np.array_equal(got, expected)
        projected = kernel_set.project_candidates(
            X32, C32, immutable=np.zeros(5, dtype=bool),
            lower=np.full(5, -0.5, dtype=np.float32),
            upper=np.full(5, 0.5, dtype=np.float32),
            monotone=np.zeros(5, dtype=int))
        assert projected.dtype == np.float64


# --------------------------------------------------------------------------
# Dispatch: env var, kernels= parameter, fallback, info.
# --------------------------------------------------------------------------
class TestDispatch:
    def test_env_var_selects_numpy(self, monkeypatch):
        monkeypatch.setenv("FAIREXP_KERNELS", "numpy")
        assert resolve_kernels(None).name == "numpy"

    def test_explicit_choice_overrides_env(self, monkeypatch):
        monkeypatch.setenv("FAIREXP_KERNELS", "numba")
        assert resolve_kernels("numpy") is _NUMPY_SET

    def test_kernel_set_passes_through(self):
        assert resolve_kernels(_NUMPY_SET) is _NUMPY_SET

    def test_invalid_choice_raises(self, monkeypatch):
        with pytest.raises(ValidationError, match="kernels must be one of"):
            resolve_kernels("fortran")
        monkeypatch.setenv("FAIREXP_KERNELS", "fortran")
        with pytest.raises(ValidationError, match="kernels must be one of"):
            resolve_kernels(None)

    def test_auto_matches_numba_availability(self):
        expected = "numba" if HAVE_NUMBA else "numpy"
        assert resolve_kernels("auto").name == expected

    def test_numba_absent_falls_back_with_warning(self, monkeypatch):
        # Simulate a numba-less environment even when numba is installed.
        monkeypatch.setitem(kernels_module._NUMBA_STATE, "kernels", False)
        monkeypatch.setattr(kernels_module, "_warned_numba_missing", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert resolve_kernels("numba") is _NUMPY_SET
        # the warning fires once, not per search
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernels("numba") is _NUMPY_SET
        assert resolve_kernels("auto") is _NUMPY_SET

    def test_active_kernel_info_fields(self):
        info = active_kernel_info("numpy")
        assert info == {"kernel_path": "numpy", "kernel_tier": "exact",
                        "kernel_numba_version": "numpy"}
        auto = active_kernel_info()
        assert auto["kernel_path"] in ("numpy", "numba")
        assert auto["kernel_tier"] == "exact"  # auto never picks turbo

    def test_module_level_kernels_accept_choice(self, rng):
        X = rng.normal(size=(6, 4))
        candidates = X + 1.0
        assert np.array_equal(
            batch_counterfactual_distance(X, candidates, kernels="numpy"),
            np.full(6, 4.0))
        projected = project_candidates(
            X, candidates, immutable=np.ones(4, dtype=bool),
            lower=np.full(4, -np.inf), upper=np.full(4, np.inf),
            monotone=np.zeros(4, dtype=int), kernels="numpy")
        assert np.array_equal(projected, X)
        trials = build_prefix_revert_trials(candidates[0], X[0],
                                            np.array([2, 0]), kernels="numpy")
        assert trials.shape == (2, 4)
        orders = rank_changed_features(X, candidates, np.ones(4), kernels="numpy")
        assert all(len(order) == 4 for order in orders)


# --------------------------------------------------------------------------
# Integration: counterfactual.py delegation, engine, session, shard specs.
# --------------------------------------------------------------------------
@pytest.fixture(scope="module")
def loan_workload():
    dataset = make_loan_dataset(400, direct_bias=1.2, recourse_gap=1.0, random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=800, random_state=0).fit(train.X, train.y)
    rejected = test.X[model.predict(test.X) == 0][:12]
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    return model, train.X, constraints, rejected


class TestIntegration:
    def test_scalar_distance_delegates_bitwise(self, rng):
        for metric in ("l1", "l2", "l0"):
            for use_scale in (False, True):
                x = rng.normal(size=9)
                x_prime = x + rng.normal(size=9)
                scale = rng.uniform(0.0, 2.0, size=9) if use_scale else None
                assert counterfactual_distance(
                    x, x_prime, scale=scale, metric=metric
                ) == legacy_distance(x, x_prime, scale=scale, metric=metric)

    def test_constraints_project_delegates_bitwise(self, loan_workload, rng):
        _, _, constraints, rejected = loan_workload
        candidates = rejected[:, None, :] + rng.normal(
            size=(rejected.shape[0], 10, rejected.shape[1]))
        expected = legacy_project(constraints, rejected[:, None, :], candidates)
        got = constraints.project(rejected[:, None, :], candidates)
        assert np.array_equal(got, expected)

    def test_kernels_choice_is_bitwise_invariant_end_to_end(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        results = {}
        for choice in (None, "numpy", "auto"):
            generator = GrowingSpheresCounterfactual(
                model, background, constraints=constraints, random_state=0)
            engine = CounterfactualEngine(generator, kernels=choice)
            results[choice] = engine.generate_aligned(rejected)
        for choice in ("numpy", "auto"):
            for a, b in zip(results[None], results[choice]):
                if a is None or b is None:
                    assert a is b
                    continue
                assert np.array_equal(a.counterfactual, b.counterfactual)
                assert a.distance == b.distance

    def test_generator_config_excludes_kernel_choice(self, loan_workload):
        model, background, _, _ = loan_workload
        plain = RandomSearchCounterfactual(model, background, random_state=0)
        chosen = RandomSearchCounterfactual(model, background, random_state=0)
        chosen.kernels = "numpy"
        config_plain, config_chosen = generator_config(plain), generator_config(chosen)
        assert "kernels" not in config_chosen
        # values may be arrays / constraint dataclasses; repr equality is the
        # same identity the store's fingerprint serialization sees
        assert repr(config_plain) == repr(config_chosen)

    def test_shard_spec_ships_resolved_kernel_name(self, loan_workload):
        model, background, _, _ = loan_workload
        generator = RandomSearchCounterfactual(model, background, random_state=0)
        generator.kernels = "numpy"
        spec = _process_shard_spec(generator)
        assert spec is not None
        assert spec["kernels"] == "numpy"
        # unset choice ships the resolved process-wide default
        plain = RandomSearchCounterfactual(model, background, random_state=0)
        assert _process_shard_spec(plain)["kernels"] == resolve_kernels(None).name

    def test_engine_kernel_path_and_validation(self, loan_workload):
        model, background, _, _ = loan_workload
        generator = RandomSearchCounterfactual(model, background, random_state=0)
        engine = CounterfactualEngine(generator, kernels="numpy")
        assert engine.kernel_path == "numpy"
        with pytest.raises(ValidationError, match="kernels must be one of"):
            CounterfactualEngine(
                RandomSearchCounterfactual(model, background, random_state=0),
                kernels="cuda")

    def test_session_reports_kernel_path(self, loan_workload):
        model, background, _, rejected = loan_workload
        generator = RandomSearchCounterfactual(model, background, random_state=0)
        with AuditSession(generator, kernels="numpy") as session:
            session.counterfactuals_for(rejected, range(3))
            assert session.stats()["kernel_path"] == "numpy"
        with AuditSession(model=model) as session:
            assert session.stats()["kernel_path"] == resolve_kernels(None).name

    def test_model_only_session_rejects_kernels(self, loan_workload):
        model, _, _, _ = loan_workload
        with pytest.raises(ValidationError, match="kernels= requires a generator"):
            AuditSession(model=model, kernels="numpy")

    def test_process_sharded_search_matches_sequential(self, loan_workload):
        model, background, constraints, rejected = loan_workload
        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background,
                                         constraints=constraints, random_state=0),
            kernels="numpy",
        ).generate_aligned(rejected)
        sharded = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, background,
                                         constraints=constraints, random_state=0),
            n_jobs=2, executor="process", kernels="numpy",
        ).generate_aligned(rejected)
        for a, b in zip(sequential, sharded):
            if a is None or b is None:
                assert a is b
                continue
            assert np.array_equal(a.counterfactual, b.counterfactual)
            assert a.distance == b.distance


# --------------------------------------------------------------------------
# numpy vs numba parity on every experiment family's workload (E1–E9).
# --------------------------------------------------------------------------
def _family_workload(family):
    """Representative (X_rows, candidates, constraints, scale) per E-family."""
    if family in ("E1", "E2", "E4", "E5", "E7", "E8"):  # loan-model experiments
        dataset = make_loan_dataset(300, direct_bias=1.2, recourse_gap=1.0,
                                    random_state=0)
    elif family in ("E3", "E9"):  # adult-like proxy-bias experiments
        dataset = make_adult_like(300, direct_bias=1.2, proxy_bias=0.9,
                                  random_state=0)
    else:  # E6: SCM loan recourse
        dataset, _ = make_scm_loan_dataset(300, random_state=0)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    rng = np.random.default_rng(sum(map(ord, family)))
    X_rows = dataset.X[rng.permutation(dataset.n_samples)[:40]]
    candidates = X_rows + rng.normal(size=X_rows.shape) * (rng.random(X_rows.shape) < 0.7)
    scale = np.std(dataset.X, axis=0)
    return X_rows, candidates, constraints, scale


@needs_numba
@pytest.mark.parametrize("family", [f"E{i}" for i in range(1, 10)])
class TestNumbaParityPerFamily:
    def test_all_kernels_bitwise_equal(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        for metric in ("l1", "l2", "l0"):
            assert np.array_equal(
                _NUMPY_SET.batch_counterfactual_distance(
                    X_rows, candidates, scale=scale, metric=metric),
                _NUMBA_SET.batch_counterfactual_distance(
                    X_rows, candidates, scale=scale, metric=metric))
        wave = candidates[:, None, :] + np.linspace(-1, 1, 8)[None, :, None]
        assert np.array_equal(
            _NUMPY_SET.project_candidates(
                X_rows[:, None, :], wave, immutable=constraints.immutable,
                lower=constraints.lower, upper=constraints.upper,
                monotone=constraints.monotone),
            _NUMBA_SET.project_candidates(
                X_rows[:, None, :], wave, immutable=constraints.immutable,
                lower=constraints.lower, upper=constraints.upper,
                monotone=constraints.monotone))
        numpy_orders = _NUMPY_SET.rank_changed_features(X_rows, candidates, scale)
        numba_orders = _NUMBA_SET.rank_changed_features(X_rows, candidates, scale)
        for a, b in zip(numpy_orders, numba_orders):
            assert np.array_equal(a, b)
        for k, order in enumerate(numpy_orders):
            if not len(order):
                continue
            assert np.array_equal(
                _NUMPY_SET.build_prefix_revert_trials(candidates[k], X_rows[k], order),
                _NUMBA_SET.build_prefix_revert_trials(candidates[k], X_rows[k], order))

    def test_search_results_bitwise_equal_across_kernel_sets(self, family):
        X_rows, candidates, constraints, scale = _family_workload(family)
        dataset_X = X_rows
        y = (dataset_X[:, 0] > np.median(dataset_X[:, 0])).astype(int)
        model = LogisticRegression(n_iter=400, random_state=0).fit(dataset_X, y)
        rejected = dataset_X[model.predict(dataset_X) == 0][:6]
        if rejected.shape[0] == 0:
            pytest.skip("family workload produced no rejected rows")
        results = {}
        for choice in ("numpy", "numba"):
            generator = GrowingSpheresCounterfactual(
                model, dataset_X, constraints=constraints, random_state=0)
            engine = CounterfactualEngine(generator, kernels=choice)
            results[choice] = engine.generate_aligned(rejected)
        for a, b in zip(results["numpy"], results["numba"]):
            if a is None or b is None:
                assert a is b
                continue
            assert np.array_equal(a.counterfactual, b.counterfactual)
            assert a.distance == b.distance


@needs_numba
class TestNumbaSpecifics:
    def test_wide_rows_defer_to_numpy_reduction(self, rng):
        d = NUMBA_MAX_REDUCE_FEATURES + 5
        X = rng.normal(size=(10, d))
        candidates = X + rng.normal(size=(10, d))
        expected = np.array([legacy_distance(x, c) for x, c in zip(X, candidates)])
        assert np.array_equal(
            _NUMBA_SET.batch_counterfactual_distance(X, candidates), expected)

    def test_exotic_projection_shape_falls_back(self, rng):
        # 4-D stacks are not hot-path shapes; numba defers to the reference.
        candidates = rng.normal(size=(2, 3, 4, 5))
        x = rng.normal(size=5)
        constraints = _random_constraints(rng, 5)
        assert np.array_equal(
            _NUMBA_SET.project_candidates(
                x, candidates, immutable=constraints.immutable,
                lower=constraints.lower, upper=constraints.upper,
                monotone=constraints.monotone),
            _NUMPY_SET.project_candidates(
                x, candidates, immutable=constraints.immutable,
                lower=constraints.lower, upper=constraints.upper,
                monotone=constraints.monotone))
