"""Shapley-value explanations.

Implements the classical game-theoretic attribution over feature coalitions:

* :func:`exact_shapley_values` — exact enumeration of all coalitions (the
  textbook formula quoted in Section IV-B of the paper), usable for up to
  ~12 features.
* :func:`sampled_shapley_values` — Monte-Carlo permutation sampling.
* :class:`ShapleyExplainer` — local explanations where the value function is
  the model's positive-class probability with non-coalition features replaced
  by background values.
* :func:`shapley_for_value_function` — Shapley attribution of an *arbitrary*
  set-valued function; the fairness-Shapley method [81] in
  :mod:`fairexp.core.fairness_shap` builds directly on this.
"""

from __future__ import annotations

from itertools import combinations
from math import comb, factorial
from typing import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state
from .base import ExplainerInfo, FeatureAttribution

__all__ = [
    "exact_shapley_values",
    "sampled_shapley_values",
    "shapley_for_value_function",
    "ShapleyExplainer",
]

SetValueFunction = Callable[[frozenset[int]], float]


def shapley_for_value_function(
    value_function: SetValueFunction,
    n_players: int,
    *,
    method: str = "exact",
    n_permutations: int = 200,
    random_state=None,
) -> np.ndarray:
    """Shapley values of ``value_function`` over ``n_players`` players.

    Parameters
    ----------
    value_function:
        Maps a coalition (frozenset of player indices) to its value.
    method:
        ``"exact"`` enumerates all coalitions (exponential);
        ``"sampling"`` uses Monte-Carlo permutations.
    """
    if method == "exact":
        return _exact_set_shapley(value_function, n_players)
    if method == "sampling":
        return _sampled_set_shapley(
            value_function, n_players, n_permutations=n_permutations, random_state=random_state
        )
    raise ValidationError(f"unknown method {method!r}")


def _exact_set_shapley(value_function: SetValueFunction, n_players: int) -> np.ndarray:
    players = list(range(n_players))
    cache: dict[frozenset[int], float] = {}

    def value(coalition: frozenset[int]) -> float:
        if coalition not in cache:
            cache[coalition] = float(value_function(coalition))
        return cache[coalition]

    shapley = np.zeros(n_players)
    for i in players:
        others = [p for p in players if p != i]
        for size in range(len(others) + 1):
            weight = factorial(size) * factorial(n_players - size - 1) / factorial(n_players)
            for subset in combinations(others, size):
                coalition = frozenset(subset)
                shapley[i] += weight * (value(coalition | {i}) - value(coalition))
    return shapley


def _sampled_set_shapley(
    value_function: SetValueFunction,
    n_players: int,
    *,
    n_permutations: int,
    random_state=None,
) -> np.ndarray:
    rng = check_random_state(random_state)
    shapley = np.zeros(n_players)
    cache: dict[frozenset[int], float] = {}

    def value(coalition: frozenset[int]) -> float:
        if coalition not in cache:
            cache[coalition] = float(value_function(coalition))
        return cache[coalition]

    for _ in range(n_permutations):
        order = rng.permutation(n_players)
        coalition: frozenset[int] = frozenset()
        previous = value(coalition)
        for player in order:
            coalition = coalition | {int(player)}
            current = value(coalition)
            shapley[player] += current - previous
            previous = current
    return shapley / n_permutations


def exact_shapley_values(
    predict: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    background: np.ndarray,
    *,
    feature_names: Sequence[str] | None = None,
    max_background: int = 50,
) -> FeatureAttribution:
    """Exact Shapley attribution of ``predict(x)`` against a background dataset.

    The value of a coalition is the interventional expectation: features
    outside the coalition are drawn from the background rows (capped at
    ``max_background``) and the prediction is averaged over them, matching
    the estimand of :func:`sampled_shapley_values`.
    """
    x = np.asarray(x, dtype=float).ravel()
    background = np.asarray(background, dtype=float)
    n_features = x.shape[0]
    if n_features > 14:
        raise ValidationError("exact Shapley is limited to 14 features; use sampling")
    baseline_rows = background[: min(max_background, background.shape[0])]

    def value(coalition: frozenset[int]) -> float:
        rows = baseline_rows.copy()
        for j in coalition:
            rows[:, j] = x[j]
        return float(np.asarray(predict(rows)).mean())

    values = shapley_for_value_function(value, n_features, method="exact")
    names = list(feature_names) if feature_names is not None else [f"x{j}" for j in range(n_features)]
    return FeatureAttribution(
        feature_names=names,
        values=values,
        baseline=value(frozenset()),
        meta={"method": "exact"},
    )


def sampled_shapley_values(
    predict: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    background: np.ndarray,
    *,
    n_permutations: int = 200,
    feature_names: Sequence[str] | None = None,
    random_state=None,
) -> FeatureAttribution:
    """Monte-Carlo Shapley attribution; error decreases as ``1/sqrt(n_permutations)``."""
    x = np.asarray(x, dtype=float).ravel()
    background = np.asarray(background, dtype=float)
    n_features = x.shape[0]
    rng = check_random_state(random_state)
    baseline_rows = background[rng.integers(0, background.shape[0], size=n_permutations)]

    shapley = np.zeros(n_features)
    for p in range(n_permutations):
        order = rng.permutation(n_features)
        row = baseline_rows[p].copy()
        previous = float(np.asarray(predict(row[None, :])).ravel()[0])
        for j in order:
            row[j] = x[j]
            current = float(np.asarray(predict(row[None, :])).ravel()[0])
            shapley[j] += current - previous
            previous = current
    shapley /= n_permutations

    names = list(feature_names) if feature_names is not None else [f"x{j}" for j in range(n_features)]
    baseline = float(np.mean([np.asarray(predict(r[None, :])).ravel()[0] for r in baseline_rows[:50]]))
    return FeatureAttribution(
        feature_names=names,
        values=shapley,
        baseline=baseline,
        meta={"method": "sampling", "n_permutations": n_permutations},
    )


class ShapleyExplainer:
    """Local Shapley explainer for a probabilistic classifier.

    Parameters
    ----------
    model:
        Any object with ``predict_proba``.
    background:
        Reference dataset used for the conditional expectations.
    method:
        ``"auto"`` (exact when few features, sampling otherwise), ``"exact"``
        or ``"sampling"``.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="both",
        explanation_type="feature",
        multiplicity="single",
    )

    def __init__(
        self,
        model,
        background: np.ndarray,
        *,
        method: str = "auto",
        n_permutations: int = 200,
        feature_names: Sequence[str] | None = None,
        random_state=None,
    ) -> None:
        self.model = model
        self.background = np.asarray(background, dtype=float)
        self.method = method
        self.n_permutations = n_permutations
        self.feature_names = feature_names
        self.random_state = random_state

    def _predict_positive(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.predict_proba(X))[:, 1]

    def explain(self, x: np.ndarray) -> FeatureAttribution:
        """Return the Shapley attribution for a single instance."""
        x = np.asarray(x, dtype=float).ravel()
        method = self.method
        if method == "auto":
            method = "exact" if x.shape[0] <= 10 else "sampling"
        if method == "exact":
            return exact_shapley_values(
                self._predict_positive, x, self.background, feature_names=self.feature_names
            )
        return sampled_shapley_values(
            self._predict_positive,
            x,
            self.background,
            n_permutations=self.n_permutations,
            feature_names=self.feature_names,
            random_state=self.random_state,
        )

    def explain_global(self, X: np.ndarray, *, max_samples: int = 50) -> FeatureAttribution:
        """Mean absolute Shapley value over a sample of instances (global importance)."""
        X = np.asarray(X, dtype=float)
        rng = check_random_state(self.random_state)
        idx = rng.permutation(X.shape[0])[: min(max_samples, X.shape[0])]
        attributions = np.vstack([self.explain(X[i]).values for i in idx])
        names = (
            list(self.feature_names)
            if self.feature_names is not None
            else [f"x{j}" for j in range(X.shape[1])]
        )
        return FeatureAttribution(
            feature_names=names,
            values=np.abs(attributions).mean(axis=0),
            baseline=0.0,
            meta={"n_explained": int(idx.shape[0]), "aggregation": "mean_abs"},
        )
