"""Probabilistic contrastive counterfactuals for fairness (Galhotra et al. [10]).

This approach explains (un)fairness through *probabilistic contrastive
counterfactual* statements of the form "had the individual's attribute A not
been a, the favourable outcome would have been p% likely".  Unlike actionable
recourse it does not require structural equations: the necessity and
sufficiency probabilities are estimated from historical data (with optional
covariate adjustment), and can be aggregated per attribute to rank the factors
most responsible for the disparity, or evaluated for the sensitive attribute
itself to quantify direct discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..causal.probabilistic import ContrastiveScores, contrastive_scores
from ..exceptions import ValidationError
from ..explanations.base import ExplainerInfo, ExplainerRegistry

__all__ = ["AttributeContrastiveResult", "ProbabilisticContrastiveExplainer"]


@dataclass
class AttributeContrastiveResult:
    """Necessity / sufficiency of one binarized attribute for the favourable outcome."""

    attribute: str
    threshold: float
    scores: ContrastiveScores
    scores_protected: ContrastiveScores
    scores_reference: ContrastiveScores

    @property
    def disparity_in_sufficiency(self) -> float:
        """Sufficiency gap between reference and protected group (positive = attribute helps the reference group more)."""
        return self.scores_reference.sufficiency - self.scores_protected.sufficiency


@ExplainerRegistry.register(
    "probabilistic_contrastive", capabilities=("fairness-explainer", "contrastive")
)
class ProbabilisticContrastiveExplainer:
    """Estimate contrastive (necessity/sufficiency) scores from model predictions.

    Parameters
    ----------
    model:
        Classifier under audit.
    feature_names:
        Column names of the feature matrix.
    sensitive_index:
        Index of the sensitive column.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="both",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, model, feature_names: Sequence[str], sensitive_index: int) -> None:
        self.model = model
        self.feature_names = list(feature_names)
        self.sensitive_index = sensitive_index

    def _binarize(self, values: np.ndarray) -> tuple[np.ndarray, float]:
        unique = np.unique(values)
        if unique.shape[0] <= 2:
            threshold = float(unique.mean()) if unique.shape[0] == 2 else float(unique[0])
            return (values > threshold - 1e-12).astype(int) if unique.shape[0] == 2 else (
                values.astype(int)
            ), threshold
        threshold = float(np.median(values))
        return (values > threshold).astype(int), threshold

    def explain_attribute(self, X, attribute: str) -> AttributeContrastiveResult:
        """Contrastive scores of one attribute for the model's favourable prediction."""
        X = np.asarray(X, dtype=float)
        if attribute not in self.feature_names:
            raise ValidationError(f"unknown attribute {attribute!r}")
        j = self.feature_names.index(attribute)
        predictions = np.asarray(self.model.predict(X)).astype(int)
        factor, threshold = self._binarize(X[:, j])
        sensitive = X[:, self.sensitive_index].astype(int)

        protected = sensitive == 1
        overall = contrastive_scores(factor, predictions)
        scores_protected = (
            contrastive_scores(factor[protected], predictions[protected])
            if 0 < factor[protected].sum() < protected.sum()
            else ContrastiveScores(0.0, 0.0, 0.0)
        )
        scores_reference = (
            contrastive_scores(factor[~protected], predictions[~protected])
            if 0 < factor[~protected].sum() < (~protected).sum()
            else ContrastiveScores(0.0, 0.0, 0.0)
        )
        return AttributeContrastiveResult(
            attribute=attribute,
            threshold=threshold,
            scores=overall,
            scores_protected=scores_protected,
            scores_reference=scores_reference,
        )

    def explain_sensitive(self, X) -> ContrastiveScores:
        """Necessity/sufficiency of *not belonging to the protected group* for approval.

        High necessity means a large share of approvals among reference-group
        members would not have happened had they been in the protected group —
        direct evidence of discrimination.
        """
        X = np.asarray(X, dtype=float)
        predictions = np.asarray(self.model.predict(X)).astype(int)
        reference_membership = (X[:, self.sensitive_index] != 1).astype(int)
        return contrastive_scores(reference_membership, predictions)

    def rank_attributes(self, X, *, exclude_sensitive: bool = True) -> list[AttributeContrastiveResult]:
        """Rank attributes by the sufficiency of their high value for approval."""
        results = []
        for name in self.feature_names:
            if exclude_sensitive and self.feature_names.index(name) == self.sensitive_index:
                continue
            results.append(self.explain_attribute(X, name))
        results.sort(key=lambda r: -r.scores.sufficiency)
        return results
