"""Regression tests for the FAIREXP_TSAN thread sanitizer.

The acceptance criterion: a deliberately unlocked cross-thread counter
mutation raises :class:`TsanError` under the instrumented primitives,
while correctly locked concurrent use stays silent (the real stress
suites run under ``FAIREXP_TSAN=1`` in CI to prove the latter at scale).
"""

import threading

import numpy as np
import pytest

from fairexp.explanations.backends import NumpyPredictBackend
from fairexp.explanations.pool import ExecutorPool
from fairexp.lint import tsan


class _Model:
    def predict(self, X):
        return np.zeros(np.atleast_2d(X).shape[0])


@pytest.fixture
def armed():
    """Force the sanitizer on for the test, restoring env control after."""
    tsan.set_enabled(True)
    yield
    tsan.set_enabled(None)


def run_in_thread(fn):
    """Run ``fn`` on a worker thread, re-raising anything it raised."""
    errors = []

    def target():
        try:
            fn()
        except BaseException as error:  # propagated to the asserting test
            errors.append(error)

    thread = threading.Thread(target=target)
    thread.start()
    thread.join()
    if errors:
        raise errors[0]


class TestPrimitives:
    def test_make_lock_is_plain_when_disarmed(self):
        tsan.set_enabled(False)
        try:
            assert not isinstance(tsan.make_lock(), tsan.TsanLock)
        finally:
            tsan.set_enabled(None)

    def test_make_lock_is_instrumented_when_armed(self, armed):
        lock = tsan.make_lock()
        assert isinstance(lock, tsan.TsanLock)
        assert not lock.held_by_current_thread()
        with lock:
            assert lock.held_by_current_thread()
            assert lock.locked()
        assert not lock.held_by_current_thread()

    def test_other_thread_does_not_appear_to_hold_lock(self, armed):
        lock = tsan.make_lock()
        observed = []
        with lock:
            run_in_thread(lambda: observed.append(lock.held_by_current_thread()))
        assert observed == [False]

    def test_condition_ownership_tracked(self, armed):
        cond = tsan.make_condition()
        assert not tsan.held_by_current_thread(cond)
        with cond:
            assert tsan.held_by_current_thread(cond)


class TestGuardedBackend:
    def test_unlocked_cross_thread_mutation_raises(self, armed):
        backend = NumpyPredictBackend(_Model())
        backend.predict(np.ones((3, 2)))  # main thread writes first
        with pytest.raises(tsan.TsanError, match="call_count"):
            run_in_thread(lambda: setattr(
                backend, "call_count", backend.call_count + 1))

    def test_locked_cross_thread_mutation_is_legal(self, armed):
        backend = NumpyPredictBackend(_Model())
        backend.predict(np.ones((3, 2)))

        def locked_bump():
            with backend._lock:
                backend.call_count += 1

        run_in_thread(locked_bump)
        assert backend.call_count == 2

    def test_concurrent_predicts_stay_clean(self, armed):
        backend = NumpyPredictBackend(_Model())
        X = np.ones((8, 2))
        threads = [threading.Thread(target=backend.predict, args=(X,))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.call_count == 8
        assert backend.row_count == 64

    def test_single_thread_unlocked_writes_are_legal(self, armed):
        # reset_counts-style single-threaded use must not trip the guard.
        backend = NumpyPredictBackend(_Model())
        backend.call_count = 5
        backend.call_count = 0
        assert backend.call_count == 0

    def test_disarmed_guard_costs_nothing_semantically(self):
        tsan.set_enabled(False)
        try:
            backend = NumpyPredictBackend(_Model())
            run_in_thread(lambda: setattr(backend, "call_count", 7))
            assert backend.call_count == 7
        finally:
            tsan.set_enabled(None)


class TestGuardedPool:
    def test_pool_map_counters_stay_clean_under_tsan(self, armed):
        with ExecutorPool(max_workers=4) as pool:
            results = pool.map("thread", lambda x: x * x, range(16))
            assert results == [x * x for x in range(16)]
            stats = pool.stats()["thread"]
            assert stats["peak_pending"] >= 1

    def test_unlocked_record_mutation_raises(self, armed):
        with ExecutorPool(max_workers=2) as pool:
            record = pool._record("thread")
            with pytest.raises(tsan.TsanError, match="pending"):
                run_in_thread(lambda: setattr(
                    record, "pending", record.pending + 1))


class TestGuardedCondition:
    def test_condition_guarded_counter(self, armed):
        @tsan.guard_counters("wire_call_count", lock_attr="_cond")
        class Client:
            def __init__(self):
                self._cond = tsan.make_condition()
                self.wire_call_count = 0

        client = Client()

        def locked_bump():
            with client._cond:
                client.wire_call_count += 1

        run_in_thread(locked_bump)
        run_in_thread(locked_bump)
        assert client.wire_call_count == 2
        # The last writer was a worker; an unlocked write from the main
        # thread is a cross-thread race.  (Racing from yet another short
        # lived worker could reuse the exited worker's ident and slip by.)
        with pytest.raises(tsan.TsanError, match="wire_call_count"):
            client.wire_call_count += 1
