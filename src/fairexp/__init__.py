"""fairexp — a library for explaining (un)fairness.

Reproduction of "On Explaining Unfairness: An Overview" (Fragkathoulas,
Papanikou, Pla Karidi, Pitoura — ICDE 2024).  The package is organized as:

* :mod:`fairexp.datasets` — dataset containers, synthetic benchmark
  generators, controlled bias injection;
* :mod:`fairexp.models` — from-scratch numpy classifiers and ML utilities;
* :mod:`fairexp.fairness` — group / individual / ranking fairness metrics and
  pre- / in- / post-processing mitigation;
* :mod:`fairexp.explanations` — the general XAI substrate (Shapley, LIME-style
  surrogates, counterfactuals, anchors, influence functions, ...);
* :mod:`fairexp.causal` — structural causal models and contrastive scores;
* :mod:`fairexp.recsys`, :mod:`fairexp.ranking`, :mod:`fairexp.graphs` — the
  recommendation, ranking and graph substrates;
* :mod:`fairexp.core` — explanations *for* fairness: one module per surveyed
  approach, the taxonomies, and the end-to-end :class:`FairnessAuditor`.
"""

from . import causal, core, datasets, explanations, fairness, graphs, models, ranking, recsys
from .core.report import FairnessAuditor, FairnessAuditReport
from .exceptions import (
    ConvergenceError,
    FairexpError,
    InfeasibleRecourseError,
    NotFittedError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "datasets",
    "models",
    "fairness",
    "explanations",
    "causal",
    "recsys",
    "ranking",
    "graphs",
    "core",
    "FairnessAuditor",
    "FairnessAuditReport",
    "FairexpError",
    "NotFittedError",
    "ValidationError",
    "ConvergenceError",
    "InfeasibleRecourseError",
    "__version__",
]
