"""Influence-based explanations: tracing predictions back to training instances.

Two estimators are provided:

* :func:`influence_functions_logistic` — closed-form influence functions for
  L2-regularized logistic regression (Hessian-inverse-vector products), which
  approximate the effect of up-weighting each training point on a test loss
  or on any differentiable functional of the parameters.
* :func:`leave_one_out_influence` — brute-force retraining influence, exact
  but expensive; used as ground truth in tests and for small data.

The Gopher-style data-based fairness explanations [63, 83] in
:mod:`fairexp.core.data_explanations` reuse these estimators with the
functional being a group-fairness metric instead of a test loss.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ValidationError
from ..models.logistic import LogisticRegression
from ..utils import sigmoid
from .base import ExampleExplanation, ExplainerInfo

__all__ = [
    "logistic_hessian",
    "logistic_gradients",
    "influence_functions_logistic",
    "leave_one_out_influence",
    "InfluenceExplainer",
]


def logistic_gradients(model: LogisticRegression, X, y) -> np.ndarray:
    """Per-sample gradient of the log-loss w.r.t. ``[coef, intercept]``.

    Returns an array of shape ``(n_samples, n_features + 1)``.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    probabilities = sigmoid(X @ model.coef_ + model.intercept_)
    error = (probabilities - y)[:, None]
    return np.hstack([error * X, error])


def logistic_hessian(model: LogisticRegression, X, *, damping: float = 1e-3) -> np.ndarray:
    """Hessian of the mean log-loss w.r.t. ``[coef, intercept]`` (plus damping)."""
    X = np.asarray(X, dtype=float)
    design = np.hstack([X, np.ones((X.shape[0], 1))])
    probabilities = sigmoid(X @ model.coef_ + model.intercept_)
    weights = probabilities * (1 - probabilities)
    hessian = (design * weights[:, None]).T @ design / X.shape[0]
    hessian += (model.l2 + damping) * np.eye(design.shape[1])
    return hessian


def influence_functions_logistic(
    model: LogisticRegression,
    X_train,
    y_train,
    functional_gradient: np.ndarray,
    *,
    damping: float = 1e-3,
) -> np.ndarray:
    """Influence of each training point on a functional of the parameters.

    ``functional_gradient`` is the gradient of the functional of interest
    (e.g. test loss, or a fairness metric) with respect to
    ``[coef, intercept]``.  The influence of up-weighting training point ``i``
    is ``-g_functional^T H^{-1} g_i``; a *negative* value means removing the
    point would *increase* the functional.
    """
    functional_gradient = np.asarray(functional_gradient, dtype=float).ravel()
    if functional_gradient.shape[0] != model.coef_.shape[0] + 1:
        raise ValidationError("functional_gradient must have n_features + 1 entries")
    hessian = logistic_hessian(model, X_train, damping=damping)
    hinv_g = np.linalg.solve(hessian, functional_gradient)
    train_gradients = logistic_gradients(model, X_train, y_train)
    return -train_gradients @ hinv_g


def leave_one_out_influence(
    model_factory: Callable[[], LogisticRegression],
    X_train,
    y_train,
    functional: Callable[[LogisticRegression], float],
    *,
    indices=None,
) -> np.ndarray:
    """Exact retraining influence: functional(full model) - functional(model without i)."""
    X_train = np.asarray(X_train, dtype=float)
    y_train = np.asarray(y_train)
    full_model = model_factory().fit(X_train, y_train)
    base_value = functional(full_model)
    if indices is None:
        indices = range(X_train.shape[0])
    influences = np.zeros(len(list(indices)))
    for position, i in enumerate(indices):
        mask = np.ones(X_train.shape[0], dtype=bool)
        mask[i] = False
        reduced = model_factory().fit(X_train[mask], y_train[mask])
        influences[position] = base_value - functional(reduced)
    return influences


class InfluenceExplainer:
    """Explain a test prediction by the most influential training instances."""

    info = ExplainerInfo(
        stage="post-hoc",
        access="gradient",
        agnostic=False,
        coverage="local",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(self, model: LogisticRegression, X_train, y_train, *, damping: float = 1e-3) -> None:
        if not isinstance(model, LogisticRegression):
            raise ValidationError("InfluenceExplainer currently supports LogisticRegression")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=float)
        self.y_train = np.asarray(y_train)
        self.damping = damping

    def explain(self, x_test, y_test, *, top_k: int = 5) -> ExampleExplanation:
        """Return the training points with the largest influence on the test loss at ``x_test``."""
        x_test = np.asarray(x_test, dtype=float).ravel()
        test_gradient = logistic_gradients(
            self.model, x_test[None, :], np.asarray([y_test], dtype=float)
        )[0]
        influences = influence_functions_logistic(
            self.model, self.X_train, self.y_train, test_gradient, damping=self.damping
        )
        order = np.argsort(-np.abs(influences))[:top_k]
        return ExampleExplanation(
            indices=tuple(int(i) for i in order),
            role="influential",
            scores=influences[order],
            meta={"estimator": "influence_function"},
        )
