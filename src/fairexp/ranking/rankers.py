"""Score-based ranking of candidates with controllable group bias.

The ranking task in the survey concerns ordered lists of candidates (people or
items) where fairness is about the representation and exposure of protected
candidates, particularly in the top-k prefix.  This module provides a simple
linear scorer, synthetic candidate pools with a controllable score penalty for
the protected group, and a greedy fairness-constrained re-ranker used as the
mitigation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_random_state

__all__ = ["RankedCandidates", "ScoreRanker", "make_ranking_candidates", "fair_topk_rerank"]


@dataclass
class RankedCandidates:
    """A pool of candidates with features, group membership and (optionally) a ranking."""

    X: np.ndarray
    groups: np.ndarray
    feature_names: list[str] = field(default_factory=list)
    scores: np.ndarray | None = None
    order: np.ndarray | None = None

    #: data modality advertised to ``ExplainerRegistry.is_compatible``
    modality = "ranking"

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=float)
        self.groups = np.asarray(self.groups, dtype=int)
        if self.X.shape[0] != self.groups.shape[0]:
            raise ValidationError("X and groups must align")
        if not self.feature_names:
            self.feature_names = [f"x{j}" for j in range(self.X.shape[1])]

    @property
    def n_candidates(self) -> int:
        """Number of ranked candidates."""
        return int(self.X.shape[0])

    def ranked_groups(self) -> np.ndarray:
        """Group values in ranking order (requires a computed ranking)."""
        if self.order is None:
            raise ValidationError("candidates have not been ranked yet")
        return self.groups[self.order]

    def top_k(self, k: int) -> np.ndarray:
        """Indices of the top-k candidates."""
        if self.order is None:
            raise ValidationError("candidates have not been ranked yet")
        return self.order[:k]


class ScoreRanker:
    """Rank candidates by a linear score ``w . x``."""

    def __init__(self, weights: Sequence[float]) -> None:
        self.weights = np.asarray(weights, dtype=float)

    def score(self, X: np.ndarray) -> np.ndarray:
        """Ranking scores for each candidate row of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.shape[1] != self.weights.shape[0]:
            raise ValidationError("weight / feature dimension mismatch")
        return X @ self.weights

    def rank(self, candidates: RankedCandidates) -> RankedCandidates:
        """Return the candidates with ``scores`` and ``order`` filled in (descending score)."""
        scores = self.score(candidates.X)
        order = np.argsort(-scores, kind="stable")
        return RankedCandidates(
            X=candidates.X,
            groups=candidates.groups,
            feature_names=candidates.feature_names,
            scores=scores,
            order=order,
        )


def make_ranking_candidates(
    n_candidates: int = 200,
    *,
    protected_fraction: float = 0.4,
    score_penalty: float = 1.0,
    n_features: int = 4,
    random_state=None,
) -> tuple[RankedCandidates, ScoreRanker]:
    """Generate a candidate pool where the protected group is penalized in one feature.

    Feature 0 ("qualification") is shared; feature 1 ("assessment") is lower
    for protected candidates by ``score_penalty`` standard deviations — the
    biased attribute a Dexer-style explanation should single out.  The
    remaining features are noise.
    """
    rng = check_random_state(random_state)
    groups = (rng.random(n_candidates) < protected_fraction).astype(int)
    X = rng.normal(0.0, 1.0, (n_candidates, n_features))
    X[:, 1] -= score_penalty * groups
    names = ["qualification", "assessment"] + [f"noise_{j}" for j in range(n_features - 2)]
    weights = np.zeros(n_features)
    weights[0] = 1.0
    weights[1] = 1.0
    ranker = ScoreRanker(weights)
    return RankedCandidates(X=X, groups=groups, feature_names=names[:n_features]), ranker


def fair_topk_rerank(
    candidates: RankedCandidates, k: int, *, min_protected_share: float, protected_value=1
) -> np.ndarray:
    """Greedy re-ranking that guarantees a minimum protected share in every prefix.

    Walks down the original ranking; whenever the protected share of the
    prefix would fall below ``min_protected_share``, the highest-ranked
    remaining protected candidate is promoted.  Returns the new top-k indices.
    """
    if candidates.order is None:
        raise ValidationError("candidates must be ranked before re-ranking")
    order = list(candidates.order)
    groups = candidates.groups
    result: list[int] = []
    remaining = order.copy()
    n_protected = 0
    for position in range(min(k, len(order))):
        required = int(np.ceil(min_protected_share * (position + 1)))
        if n_protected < required:
            protected_left = [i for i in remaining if groups[i] == protected_value]
            pick = protected_left[0] if protected_left else remaining[0]
        else:
            pick = remaining[0]
        result.append(pick)
        remaining.remove(pick)
        if groups[pick] == protected_value:
            n_protected += 1
    return np.asarray(result, dtype=int)
