"""End-to-end fairness audit report combining metrics and explanations.

:class:`FairnessAuditor` is the library's highest-level entry point: given a
trained classifier and a :class:`~fairexp.datasets.Dataset`, it produces a
:class:`FairnessAuditReport` bundling the group-fairness metric battery, the
counterfactual burden / NAWB audit, a fairness-Shapley attribution, and
(optionally) a FACTS subgroup audit — the three explanation goals (E, U, M)
the paper identifies, in one object suitable for dashboards or CI checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.schema import Dataset
from ..explanations.base import FeatureAttribution
from ..explanations.counterfactual import (
    ActionabilityConstraints,
    GrowingSpheresCounterfactual,
)
from ..explanations.session import AuditSession
from ..fairness.group_metrics import GroupFairnessReport, group_fairness_report
from .burden import BurdenExplainer, BurdenResult
from .facts import FACTSExplainer, FACTSResult
from .fairness_shap import FairnessShapExplainer
from .nawb import NAWBExplainer, NAWBResult

__all__ = ["FairnessAuditReport", "FairnessAuditor"]


@dataclass
class FairnessAuditReport:
    """Everything the auditor computed, with a text renderer."""

    dataset_name: str
    model_name: str
    metrics: GroupFairnessReport
    burden: BurdenResult | None = None
    nawb: NAWBResult | None = None
    fairness_attribution: FeatureAttribution | None = None
    facts: FACTSResult | None = None
    meta: dict = field(default_factory=dict)

    def summary(self) -> str:
        """Human-readable multi-line summary of the audit."""
        lines = [
            f"Fairness audit — model {self.model_name!r} on dataset {self.dataset_name!r}",
            "",
            "Group fairness metrics (protected minus reference):",
        ]
        for name, value in self.metrics.as_dict().items():
            lines.append(f"  {name:35s} {value:+.4f}")
        worst, deviation = self.metrics.worst_violation()
        lines.append(f"  worst violation: {worst} (|dev| = {deviation:.4f})")
        if self.burden is not None:
            lines.append("")
            lines.append("Counterfactual burden [72]:")
            for name, value in self.burden.as_dict().items():
                lines.append(f"  {name:35s} {value:+.4f}")
        if self.nawb is not None:
            lines.append("")
            lines.append("Normalized accuracy-weighted burden [73]:")
            for name, value in self.nawb.as_dict().items():
                lines.append(f"  {name:35s} {value:+.4f}")
        if self.fairness_attribution is not None:
            lines.append("")
            lines.append("Fairness-Shapley attribution of the parity gap [81]:")
            for name, value in self.fairness_attribution.top(5):
                lines.append(f"  {name:35s} {value:+.4f}")
        if self.facts is not None:
            lines.append("")
            lines.append("FACTS most recourse-biased subgroups [77]:")
            for audit in self.facts.top_biased(3):
                lines.append(f"  {audit.describe()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Flat dictionary of the headline numbers (for logging / benchmarking)."""
        result = {"dataset": self.dataset_name, "model": self.model_name}
        result.update(self.metrics.as_dict())
        if self.burden is not None:
            result.update(self.burden.as_dict())
        if self.nawb is not None:
            result.update(self.nawb.as_dict())
        if self.fairness_attribution is not None:
            result["fairness_attribution"] = self.fairness_attribution.as_dict()
        return result


class FairnessAuditor:
    """One-call fairness audit of a classifier on a dataset.

    Parameters
    ----------
    include:
        Which optional explanation components to run; any subset of
        ``{"burden", "nawb", "shap", "facts"}``.  The metric battery always runs.
    max_explained:
        Cap on the number of individuals counterfactuals are generated for
        (keeps the audit fast on large test sets).
    n_jobs:
        Worker threads for the shared-pass audit session's sharded
        counterfactual generation (results are bitwise-identical to 1).
    """

    def __init__(
        self,
        *,
        include: tuple[str, ...] = ("burden", "nawb", "shap"),
        max_explained: int = 40,
        n_jobs: int = 1,
        random_state=None,
    ) -> None:
        self.include = tuple(include)
        self.max_explained = max_explained
        self.n_jobs = n_jobs
        self.random_state = random_state

    def audit(self, model, dataset: Dataset, *, train_dataset: Dataset | None = None
              ) -> FairnessAuditReport:
        """Run the audit of ``model`` on ``dataset`` (test split).

        ``train_dataset`` provides the background sample for Shapley and
        counterfactual search; it defaults to the audited dataset.
        """
        background_dataset = train_dataset or dataset
        rng = np.random.default_rng(self.random_state)

        predictions = np.asarray(model.predict(dataset.X))
        proba = None
        if hasattr(model, "predict_proba"):
            proba = np.asarray(model.predict_proba(dataset.X))[:, 1]
        metrics = group_fairness_report(
            dataset.y, predictions, dataset.sensitive_values, y_proba=proba
        )

        # Subsample the audited rows for the counterfactual-based components.
        if dataset.n_samples > self.max_explained * 4:
            idx = rng.choice(dataset.n_samples, size=self.max_explained * 4, replace=False)
            audit_subset = dataset.subset(idx)
        else:
            audit_subset = dataset

        constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
        generator = GrowingSpheresCounterfactual(
            model, background_dataset.X, constraints=constraints, random_state=self.random_state
        )
        # One shared-pass session: burden and NAWB consume the same
        # population's counterfactual matrix, so it is computed once.
        session = AuditSession(generator, n_jobs=self.n_jobs)

        burden = None
        if "burden" in self.include:
            burden = BurdenExplainer(session=session).explain(
                audit_subset.X, audit_subset.sensitive_values
            )
        nawb = None
        if "nawb" in self.include:
            nawb = NAWBExplainer(session=session).explain(
                audit_subset.X, audit_subset.y, audit_subset.sensitive_values
            )
        attribution = None
        if "shap" in self.include:
            explainer = FairnessShapExplainer(
                session.model,
                background_dataset.X,
                feature_names=dataset.feature_names,
                method="exact" if dataset.n_features <= 8 else "sampling",
                random_state=self.random_state,
            )
            attribution = explainer.explain(audit_subset.X, audit_subset.sensitive_values)
        facts = None
        if "facts" in self.include:
            facts_explainer = FACTSExplainer(
                session.model,
                dataset.feature_names,
                dataset.sensitive_index,
                random_state=self.random_state,
            )
            facts = facts_explainer.explain(dataset.X, dataset.sensitive_values)

        return FairnessAuditReport(
            dataset_name=dataset.name,
            model_name=type(model).__name__,
            metrics=metrics,
            burden=burden,
            nawb=nawb,
            fairness_attribution=attribution,
            facts=facts,
            meta={"n_samples_audited": audit_subset.n_samples,
                  **{f"session_{key}": value for key, value in session.stats().items()}},
        )
