"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from fairexp.causal import (
    probability_of_necessity,
    probability_of_necessity_and_sufficiency,
    probability_of_sufficiency,
)
from fairexp.explanations import counterfactual_distance, shapley_for_value_function
from fairexp.explanations.counterfactual import ActionabilityConstraints
from fairexp.fairness import (
    disparate_impact,
    generalized_entropy_index,
    group_exposure_ratio,
    position_weights,
    statistical_parity_difference,
    top_k_representation,
)
from fairexp.models import confusion_matrix, f1_score, precision_score, recall_score
from fairexp.models.metrics import roc_curve
from fairexp.utils import one_hot, safe_divide, sigmoid, softmax

SETTINGS = settings(max_examples=60, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------
# Numeric utilities
# --------------------------------------------------------------------------
@SETTINGS
@given(hnp.arrays(np.float64, st.integers(1, 50),
                  elements=st.floats(-700, 700)))
def test_sigmoid_bounded_and_monotone(z):
    values = sigmoid(z)
    assert np.all((values >= 0) & (values <= 1))
    order = np.argsort(z)
    assert np.all(np.diff(values[order]) >= -1e-12)


@SETTINGS
@given(hnp.arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(1, 6)),
                  elements=st.floats(-50, 50)))
def test_softmax_rows_are_distributions(z):
    values = softmax(z, axis=1)
    assert np.allclose(values.sum(axis=1), 1.0)
    assert np.all(values >= 0)


@SETTINGS
@given(st.lists(st.integers(0, 5), min_size=1, max_size=30))
def test_one_hot_rows_sum_to_one(labels):
    encoded = one_hot(labels)
    assert np.allclose(encoded.sum(axis=1), 1.0)
    assert np.array_equal(np.argmax(encoded, axis=1), np.asarray(labels))


@SETTINGS
@given(
    st.floats(-1e6, 1e6),
    st.one_of(st.just(0.0), st.floats(1e-3, 1e6), st.floats(-1e6, -1e-3)),
)
def test_safe_divide_never_raises(a, b):
    result = safe_divide(a, b, default=0.0)
    assert np.isfinite(result)
    if b != 0:
        assert result == pytest.approx(a / b, rel=1e-9, abs=1e-9)
    else:
        assert result == 0.0


# --------------------------------------------------------------------------
# Classification metrics
# --------------------------------------------------------------------------
binary_arrays = hnp.arrays(np.int64, st.integers(2, 200), elements=st.integers(0, 1))


@SETTINGS
@given(binary_arrays, binary_arrays)
def test_confusion_matrix_total_and_metric_bounds(y_true, y_pred):
    n = min(len(y_true), len(y_pred))
    y_true, y_pred = y_true[:n], y_pred[:n]
    matrix = confusion_matrix(y_true, y_pred)
    assert matrix.sum() == n
    for metric in (precision_score, recall_score, f1_score):
        assert 0.0 <= metric(y_true, y_pred) <= 1.0


@SETTINGS
@given(st.integers(2, 100), st.integers(0, 10**6))
def test_roc_curve_endpoints(n, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    scores = rng.random(n)
    fpr, tpr, _ = roc_curve(y, scores)
    assert fpr[0] == 0.0 and tpr[0] == 0.0
    assert fpr[-1] == pytest.approx(1.0) or y.sum() in (0, n)
    assert np.all((fpr >= 0) & (fpr <= 1)) and np.all((tpr >= 0) & (tpr <= 1))


# --------------------------------------------------------------------------
# Fairness metrics
# --------------------------------------------------------------------------
@SETTINGS
@given(st.integers(4, 300), st.integers(0, 10**6))
def test_parity_metrics_bounds_and_antisymmetry(n, seed):
    rng = np.random.default_rng(seed)
    y_pred = rng.integers(0, 2, n)
    sensitive = np.concatenate([np.zeros(n // 2, dtype=int), np.ones(n - n // 2, dtype=int)])
    spd = statistical_parity_difference(y_pred, sensitive)
    assert -1.0 <= spd <= 1.0
    flipped = statistical_parity_difference(y_pred, 1 - sensitive)
    assert flipped == pytest.approx(-spd)
    assert disparate_impact(y_pred, sensitive) >= 0.0


@SETTINGS
@given(hnp.arrays(np.float64, st.integers(1, 100), elements=st.floats(0.01, 100)))
def test_generalized_entropy_nonnegative_and_scale_invariant(benefits):
    value = generalized_entropy_index(benefits)
    assert value >= -1e-12
    assert generalized_entropy_index(3.0 * benefits) == pytest.approx(value, abs=1e-9)


@SETTINGS
@given(st.integers(1, 50))
def test_position_weights_positive_and_decreasing(n):
    weights = position_weights(n)
    assert np.all(weights > 0)
    assert np.all(np.diff(weights) <= 1e-12)


@SETTINGS
@given(hnp.arrays(np.int64, st.integers(2, 100), elements=st.integers(0, 1)),
       st.integers(1, 50))
def test_topk_representation_bounds(groups, k):
    if groups.sum() == 0 or groups.sum() == len(groups):
        return
    share = top_k_representation(groups, k)
    assert 0.0 <= share <= 1.0
    assert group_exposure_ratio(groups) >= 0.0


# --------------------------------------------------------------------------
# Causal contrastive scores
# --------------------------------------------------------------------------
@SETTINGS
@given(st.integers(4, 200), st.integers(0, 10**6))
def test_contrastive_scores_consistency(n, seed):
    rng = np.random.default_rng(seed)
    factor = rng.integers(0, 2, n)
    outcome = rng.integers(0, 2, n)
    pn = probability_of_necessity(factor, outcome)
    ps = probability_of_sufficiency(factor, outcome)
    pns = probability_of_necessity_and_sufficiency(factor, outcome)
    assert 0.0 <= pn <= 1.0
    assert 0.0 <= ps <= 1.0
    # PNS is a lower bound on both PN and PS under monotonicity.
    assert pns <= pn + 1e-9
    assert pns <= ps + 1e-9


# --------------------------------------------------------------------------
# Counterfactual machinery
# --------------------------------------------------------------------------
@SETTINGS
@given(hnp.arrays(np.float64, st.integers(1, 10), elements=st.floats(-100, 100)),
       hnp.arrays(np.float64, st.integers(1, 10), elements=st.floats(-100, 100)))
def test_counterfactual_distance_axioms(x, x_prime):
    n = min(x.shape[0], x_prime.shape[0])
    x, x_prime = x[:n], x_prime[:n]
    for metric in ("l1", "l2", "l0"):
        forward = counterfactual_distance(x, x_prime, metric=metric)
        backward = counterfactual_distance(x_prime, x, metric=metric)
        assert forward >= 0
        assert forward == pytest.approx(backward, rel=1e-9, abs=1e-9)
        assert counterfactual_distance(x, x, metric=metric) == 0.0


@SETTINGS
@given(hnp.arrays(np.float64, st.integers(1, 8), elements=st.floats(-10, 10)),
       hnp.arrays(np.float64, st.integers(1, 8), elements=st.floats(-10, 10)),
       st.integers(0, 10**6))
def test_constraint_projection_is_idempotent_and_feasible(x, candidate, seed):
    n = min(x.shape[0], candidate.shape[0])
    x, candidate = x[:n], candidate[:n]
    rng = np.random.default_rng(seed)
    constraints = ActionabilityConstraints.unconstrained(n)
    constraints.immutable = rng.random(n) < 0.3
    constraints.monotone = rng.integers(-1, 2, n)
    constraints.lower = np.where(rng.random(n) < 0.5, -5.0, -np.inf)
    constraints.upper = np.where(rng.random(n) < 0.5, 5.0, np.inf)
    # Ensure the original point itself is inside the box, as in real datasets.
    constraints.lower = np.minimum(constraints.lower, x)
    constraints.upper = np.maximum(constraints.upper, x)
    projected = constraints.project(x, candidate)
    assert constraints.is_feasible(x, projected)
    assert np.allclose(constraints.project(x, projected), projected)


# --------------------------------------------------------------------------
# Shapley axioms on random additive games
# --------------------------------------------------------------------------
@SETTINGS
@given(st.integers(2, 6), st.integers(0, 10**6))
def test_shapley_efficiency_and_additivity(n_players, seed):
    rng = np.random.default_rng(seed)
    weights = rng.normal(size=n_players)
    offsets = rng.normal(size=n_players)

    def game_a(S):
        return float(sum(weights[i] for i in S))

    def game_b(S):
        return float(sum(offsets[i] for i in S))

    values_a = shapley_for_value_function(game_a, n_players, method="exact")
    values_b = shapley_for_value_function(game_b, n_players, method="exact")
    values_sum = shapley_for_value_function(
        lambda S: game_a(S) + game_b(S), n_players, method="exact"
    )
    assert np.allclose(values_a, weights, atol=1e-9)
    assert np.allclose(values_sum, values_a + values_b, atol=1e-9)
    assert values_a.sum() == pytest.approx(game_a(frozenset(range(n_players))))
