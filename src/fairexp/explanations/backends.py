"""Pluggable predict backends for the counterfactual engine.

The engine's hot path is ``model.predict`` over large stacked candidate
matrices.  This module isolates *how* those batches are evaluated behind a
small :class:`PredictBackend` protocol so that the dispatch strategy can be
swapped without touching the engine, the audits, or the counting interface
the benchmarks rely on:

* :class:`NumpyPredictBackend` — the default: forwards batches to an
  in-process model's vectorized ``predict`` and counts calls/rows;
* :class:`CallablePredictBackend` — adapts any ``f(X) -> labels`` callable
  (an ONNX runtime session's ``run``, a compiled kernel, a remote scoring
  service) to the same counting interface;
* :class:`MemoizingPredictBackend` — a coalescing wrapper around any other
  backend that serves repeated matrices from a memo, so audits sharing a
  session never pay twice for the same population.

The out-of-process backends — :class:`~fairexp.explanations.serving.OnnxExportBackend`
(a serialized NumPy compute graph, no model import needed) and
:class:`~fairexp.explanations.serving.RemoteScoringBackend` (a coalescing
client over ``python -m fairexp serve``) — build on these classes and live
in :mod:`fairexp.explanations.serving`.

All backends are thread-safe with respect to their counters and memo, which
is what lets the engine execute shards of a work-list across a worker pool
against one shared backend (see
:class:`~fairexp.explanations.engine.CounterfactualEngine`).
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..lint.tsan import guard_counters, make_lock

__all__ = [
    "PredictBackend",
    "NumpyPredictBackend",
    "CallablePredictBackend",
    "MemoizingPredictBackend",
    "ensure_backend",
]


@runtime_checkable
class PredictBackend(Protocol):
    """Counting predict dispatcher: the engine's only view of a model.

    Implementations must set ``is_predict_backend = True`` (how
    :func:`ensure_backend` distinguishes a backend from a bare model, since
    both expose ``predict``) and maintain ``call_count`` / ``row_count``
    across threads.  ``releases_gil`` declares whether ``predict`` spends its
    time outside the GIL (vectorized NumPy does; pure-Python callables and
    GIL-holding extension predictors do not) — the engine reads it to choose
    between thread- and process-based sharding.
    """

    is_predict_backend: bool
    name: str
    releases_gil: bool

    def predict(self, X) -> np.ndarray:
        """Labels for a candidate matrix ``X``, counted as one call."""
        ...

    def reset_counts(self) -> None:
        """Zero the call/row counters (and drop any memo)."""
        ...


@guard_counters("call_count", "row_count")
class NumpyPredictBackend:
    """Default backend: vectorized in-process ``model.predict`` batches.

    Attributes
    ----------
    call_count, row_count:
        Number of forwarded ``predict`` invocations and total rows across
        them — the quantities :class:`~fairexp.explanations.BatchModelAdapter`
        re-exports as ``predict_call_count`` / ``predict_row_count``.
    """

    is_predict_backend = True
    name = "numpy"
    # Vectorized NumPy predict spends its time in BLAS/ufunc loops, which
    # release the GIL — thread-sharding scales, so the engine's "auto"
    # executor keeps the cheap thread pool.
    releases_gil = True

    def __init__(self, model) -> None:
        self.model = model
        self.call_count = 0
        self.row_count = 0
        self._lock = make_lock()

    # Memo-less backends report zero hits so the adapter's counting
    # interface is uniform across the backend stack.
    cache_hit_count = 0

    def _run(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.predict(X))

    def predict(self, X) -> np.ndarray:
        """Labels for ``X`` via one counted vectorized model call.

        Counting happens only after ``_run`` returns: a raising predict
        (exactly what a remote scorer timeout looks like) must not inflate
        the session accounting the BENCH_* trajectories are built from —
        callers retrying a failed batch would otherwise double-count it.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        result = self._run(X)
        with self._lock:
            self.call_count += 1
            self.row_count += int(X.shape[0])
        return result

    def reset_counts(self) -> None:
        """Zero the call/row counters."""
        with self._lock:
            self.call_count = 0
            self.row_count = 0

    def add_counts(self, calls: int, rows: int) -> None:
        """Fold externally observed predict work into this backend's counters.

        The engine's process-sharded path runs each shard against a fresh
        backend inside the worker; the parent calls this with the workers'
        totals so session-wide accounting stays honest across process
        boundaries.
        """
        with self._lock:
            self.call_count += int(calls)
            self.row_count += int(rows)


class CallablePredictBackend(NumpyPredictBackend):
    """Backend over a bare ``f(X) -> labels`` callable.

    This is the slot for out-of-process predictors — an ONNX runtime
    session, a compiled kernel, or a remote scoring endpoint — anything that
    maps a candidate matrix to labels without exposing a model object.

    Parameters
    ----------
    fn:
        The predict callable mapping an ``(n, d)`` matrix to ``n`` labels.
    name:
        Display name for diagnostics.
    releases_gil:
        Whether ``fn`` releases the GIL while it runs.  Defaults to
        ``False`` — an arbitrary Python callable holds the GIL, so
        thread-sharding it would serialize; the engine's ``executor="auto"``
        responds by sharding across processes instead.  Set ``True`` for
        callables that genuinely drop the GIL (ONNX runtime sessions,
        network-bound remote scorers).
    """

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], *, name: str = "callable",
                 releases_gil: bool = False) -> None:
        super().__init__(model=None)
        self.fn = fn
        self.name = name
        self.releases_gil = releases_gil

    def _run(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.fn(X))


@guard_counters("cache_hit_count")
class MemoizingPredictBackend:
    """Coalescing/memoizing wrapper around another backend.

    Repeated ``predict`` calls on a bitwise-identical matrix are served from
    a memo instead of re-invoking the inner backend; memo hits do not count
    as forwarded calls.  This is what makes an
    :class:`~fairexp.explanations.session.AuditSession` cheap when several
    audits score the same population: only the first audit pays.

    The wrapped model must stay frozen for the lifetime of the memo —
    refitting it in place would keep serving stale labels.  Callers that
    refit between audits should use the inner backend directly or call
    :meth:`reset_counts` (which clears the memo).

    Parameters
    ----------
    inner:
        The backend actually evaluating cache misses.
    max_rows:
        Matrices with more rows than this bypass the memo (hashing huge
        candidate batches costs more than the predict it saves).
    max_entries:
        The memo is cleared once it holds this many entries.
    """

    is_predict_backend = True
    name = "memo"

    def __init__(self, inner, *, max_rows: int = 2048, max_entries: int = 256) -> None:
        self.inner = ensure_backend(inner)
        self.max_rows = max_rows
        self.max_entries = max_entries
        self.cache_hit_count = 0
        self._memo: dict[tuple, np.ndarray] = {}
        self._lock = make_lock()

    # ------------------------------------------------------------ delegation
    @property
    def model(self):
        """The inner backend's model, if it exposes one."""
        return getattr(self.inner, "model", None)

    @property
    def call_count(self) -> int:
        """Forwarded (non-memo) predict invocations, from the inner backend."""
        return self.inner.call_count

    @property
    def row_count(self) -> int:
        """Total rows across forwarded predict calls, from the inner backend."""
        return self.inner.row_count

    @property
    def releases_gil(self) -> bool:
        """Memoization adds no GIL-bound work; the inner backend decides."""
        return getattr(self.inner, "releases_gil", True)

    def add_counts(self, calls: int, rows: int) -> None:
        """Forward externally observed predict work to the inner counters.

        No-op when the inner backend is a third-party implementation without
        count folding — dropped accounting beats a crashed audit.
        """
        add = getattr(self.inner, "add_counts", None)
        if add is not None:
            add(calls, rows)

    # ------------------------------------------------------------- interface
    def predict(self, X) -> np.ndarray:
        """Labels for ``X`` — from the memo when an identical matrix was
        already evaluated, otherwise via the (counted) inner backend."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        key = None
        if X.shape[0] <= self.max_rows:
            key = (X.shape, X.tobytes())
            with self._lock:
                hit = self._memo.get(key)
                if hit is not None:
                    self.cache_hit_count += 1
                    return hit.copy()
        result = self.inner.predict(X)
        if key is not None:
            with self._lock:
                if len(self._memo) >= self.max_entries:
                    self._memo.clear()
                self._memo[key] = result.copy()
        return result

    def clear_memo(self) -> None:
        """Drop memoized predictions without touching any counters.

        This is what :meth:`AuditSession.reset_results` calls so a refit
        model stops being served stale labels while the sweep's accounting
        keeps accumulating.
        """
        with self._lock:
            self._memo.clear()

    def reset_counts(self) -> None:
        """Zero every counter and drop the memo (inner backend included)."""
        with self._lock:
            self.cache_hit_count = 0
            self._memo.clear()
        self.inner.reset_counts()


def ensure_backend(model_or_backend) -> PredictBackend:
    """Coerce a model or backend to a :class:`PredictBackend`.

    Objects flagging ``is_predict_backend`` pass through untouched (so
    third-party ONNX/remote backends slot in without subclassing); anything
    else is treated as an in-process model and wrapped in the vectorized
    NumPy default.
    """
    if getattr(model_or_backend, "is_predict_backend", False):
        return model_or_backend
    return NumpyPredictBackend(model_or_backend)
