"""Counterfactual explanation trees (Kanamori et al. [76]).

A counterfactual explanation tree partitions the affected (negatively
classified) population with a shallow decision tree and assigns *one action
per leaf*, so that every individual routed to a leaf receives the same
transparent recourse recommendation.  The tree trades off action cost against
the fraction of the leaf whose prediction actually flips (validity); comparing
the per-group validity/cost of the assigned actions audits recourse fairness
with a consistent, interpretable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..fairness.groups import group_masks
from .facts import Action

__all__ = ["CFTreeNode", "CFTreeResult", "CounterfactualExplanationTree"]


@dataclass
class CFTreeNode:
    """A node in the counterfactual explanation tree."""

    depth: int
    indices: np.ndarray = field(repr=False)
    feature: int | None = None
    threshold: float = 0.0
    left: "CFTreeNode | None" = None
    right: "CFTreeNode | None" = None
    action: Action | None = None
    validity: float = 0.0
    mean_cost: float = 0.0

    @property
    def is_leaf(self) -> bool:
        """True when this node has no children."""
        return self.feature is None

    def route(self, x: np.ndarray) -> "CFTreeNode":
        """The leaf reached by routing ``x`` down the split tests."""
        node = self
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node


@dataclass
class CFTreeResult:
    """Fitted tree plus per-group validity and cost of the assigned actions."""

    root: CFTreeNode
    n_leaves: int
    overall_validity: float
    overall_cost: float
    validity_protected: float
    validity_reference: float
    cost_protected: float
    cost_reference: float

    @property
    def validity_gap(self) -> float:
        """validity(reference) - validity(protected)."""
        return self.validity_reference - self.validity_protected

    @property
    def cost_gap(self) -> float:
        """cost(protected) - cost(reference)."""
        return self.cost_protected - self.cost_reference


@ExplainerRegistry.register("cf_tree", capabilities=("fairness-explainer", "counterfactual-based"))
class CounterfactualExplanationTree:
    """Build a shallow tree assigning one recourse action per leaf.

    Parameters
    ----------
    model:
        Classifier under audit.
    candidate_actions:
        Pool of actions to choose from (e.g. from
        :meth:`fairexp.core.facts.FACTSExplainer._candidate_actions` or
        hand-crafted); each leaf picks the action maximizing
        ``validity - cost_weight * mean_cost`` on its members.
    max_depth:
        Depth of the partition tree.
    cost_weight:
        Trade-off between flipping predictions and keeping actions cheap.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model,
        candidate_actions: Sequence[Action],
        *,
        feature_names: Sequence[str] | None = None,
        max_depth: int = 2,
        min_leaf_size: int = 10,
        cost_weight: float = 0.05,
    ) -> None:
        self.model = model
        self.candidate_actions = list(candidate_actions)
        self.feature_names = list(feature_names) if feature_names is not None else None
        self.max_depth = max_depth
        self.min_leaf_size = min_leaf_size
        self.cost_weight = cost_weight
        self.root_: CFTreeNode | None = None
        self._scale: np.ndarray | None = None

    # ------------------------------------------------------------- fitting
    def _best_action(self, rows: np.ndarray) -> tuple[Action, float, float]:
        best, best_score, best_validity, best_cost = None, -np.inf, 0.0, 0.0
        for action in self.candidate_actions:
            modified = action.apply(rows)
            validity = float(np.mean(np.asarray(self.model.predict(modified)) == 1))
            cost = float(action.cost(rows, self._scale).mean())
            score = validity - self.cost_weight * cost
            if score > best_score:
                best, best_score, best_validity, best_cost = action, score, validity, cost
        return best, best_validity, best_cost

    def _leaf_objective(self, rows: np.ndarray) -> float:
        _, validity, cost = self._best_action(rows)
        return validity - self.cost_weight * cost

    def _build(self, X: np.ndarray, indices: np.ndarray, depth: int) -> CFTreeNode:
        node = CFTreeNode(depth=depth, indices=indices)
        rows = X[indices]
        action, validity, cost = self._best_action(rows)
        node.action, node.validity, node.mean_cost = action, validity, cost

        if depth >= self.max_depth or indices.shape[0] < 2 * self.min_leaf_size:
            return node

        parent_objective = validity - self.cost_weight * cost
        best_gain, best_split = 0.0, None
        for feature in range(X.shape[1]):
            values = rows[:, feature]
            thresholds = np.unique(np.quantile(values, [0.25, 0.5, 0.75]))
            for threshold in thresholds:
                left_mask = values <= threshold
                if left_mask.sum() < self.min_leaf_size or (~left_mask).sum() < self.min_leaf_size:
                    continue
                left_objective = self._leaf_objective(rows[left_mask])
                right_objective = self._leaf_objective(rows[~left_mask])
                weighted = (
                    left_mask.mean() * left_objective + (~left_mask).mean() * right_objective
                )
                gain = weighted - parent_objective
                if gain > best_gain + 1e-9:
                    best_gain = gain
                    best_split = (feature, float(threshold), left_mask)

        if best_split is None:
            return node
        feature, threshold, left_mask = best_split
        node.feature, node.threshold = feature, threshold
        node.left = self._build(X, indices[left_mask], depth + 1)
        node.right = self._build(X, indices[~left_mask], depth + 1)
        return node

    def fit(self, X) -> "CounterfactualExplanationTree":
        """Fit the tree on the negatively classified rows of ``X``."""
        X = np.asarray(X, dtype=float)
        self._scale = X.std(axis=0)
        self._scale[self._scale == 0] = 1.0
        predictions = np.asarray(self.model.predict(X))
        affected = np.flatnonzero(predictions == 0)
        self._X = X
        self.root_ = self._build(X, affected, depth=0)
        return self

    # ------------------------------------------------------------ auditing
    def _collect_leaves(self) -> list[CFTreeNode]:
        leaves = []

        def walk(node: CFTreeNode) -> None:
            if node.is_leaf:
                leaves.append(node)
                return
            walk(node.left)
            walk(node.right)

        walk(self.root_)
        return leaves

    def assigned_action(self, x: np.ndarray) -> Action:
        """Return the action assigned to the leaf ``x`` falls into."""
        return self.root_.route(np.asarray(x, dtype=float)).action

    def audit(self, X, sensitive, *, protected_value=1) -> CFTreeResult:
        """Evaluate the fitted tree's per-group validity and cost."""
        if self.root_ is None:
            raise RuntimeError("call fit() before audit()")
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = np.asarray(self.model.predict(X))
        affected = predictions == 0
        masks = group_masks(sensitive, protected_value=protected_value)

        def side(mask: np.ndarray) -> tuple[float, float]:
            idx = np.flatnonzero(mask & affected)
            if idx.shape[0] == 0:
                return 0.0, 0.0
            successes, costs = [], []
            for i in idx:
                action = self.assigned_action(X[i])
                modified = action.apply(X[i][None, :])
                successes.append(int(np.asarray(self.model.predict(modified))[0] == 1))
                costs.append(float(action.cost(X[i][None, :], self._scale)[0]))
            return float(np.mean(successes)), float(np.mean(costs))

        validity_protected, cost_protected = side(masks.protected)
        validity_reference, cost_reference = side(masks.reference)
        validity_all, cost_all = side(np.ones(X.shape[0], dtype=bool))
        leaves = self._collect_leaves()
        return CFTreeResult(
            root=self.root_,
            n_leaves=len(leaves),
            overall_validity=validity_all,
            overall_cost=cost_all,
            validity_protected=validity_protected,
            validity_reference=validity_reference,
            cost_protected=cost_protected,
            cost_reference=cost_reference,
        )

    def describe(self) -> list[str]:
        """Readable description of the tree: path conditions and assigned actions."""
        if self.root_ is None:
            raise RuntimeError("call fit() before describe()")
        names = self.feature_names or [f"x{j}" for j in range(self._X.shape[1])]
        lines: list[str] = []

        def walk(node: CFTreeNode, conditions: list[str]) -> None:
            if node.is_leaf:
                premise = " AND ".join(conditions) if conditions else "TRUE"
                action = node.action.describe(names) if node.action else "no action"
                lines.append(
                    f"IF {premise} THEN {action} "
                    f"(validity={node.validity:.2f}, cost={node.mean_cost:.2f})"
                )
                return
            walk(node.left, conditions + [f"{names[node.feature]} <= {node.threshold:.4g}"])
            walk(node.right, conditions + [f"{names[node.feature]} > {node.threshold:.4g}"])

        walk(self.root_, [])
        return lines
