"""Tests for the session-scoped persistent executor pool."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AuditSession,
    CounterfactualEngine,
    ExecutorPool,
    GrowingSpheresCounterfactual,
)


@pytest.fixture
def workload(loan_data, loan_model, loan_cf_generator):
    dataset, train, test = loan_data
    rejected = test.X[np.flatnonzero(loan_model.predict(test.X) == 0)[:16]]
    return train, loan_model, loan_cf_generator.constraints, rejected


def _generator(train, model, constraints):
    return GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                        random_state=0)


class _CountingFactory:
    """Executor factory double that counts constructions."""

    def __init__(self, inner):
        self.inner = inner
        self.constructed = 0

    def __call__(self, *args, **kwargs):
        self.constructed += 1
        return self.inner(*args, **kwargs)


class TestExecutorPool:
    def test_lazy_creation_and_reuse(self):
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(max_workers=2, thread_factory=factory) as pool:
            assert factory.constructed == 0  # nothing until first use
            first = pool.executor("thread")
            second = pool.executor("thread")
            assert first is second
            assert factory.constructed == 1
            assert pool.created_counts == {"thread": 1, "process": 0}
            assert pool.active_kinds() == ["thread"]

    def test_shutdown_refuses_further_use(self):
        pool = ExecutorPool(max_workers=1)
        pool.executor("thread")
        pool.shutdown()
        with pytest.raises(ValidationError):
            pool.executor("thread")

    def test_reset_builds_a_fresh_executor(self):
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(max_workers=1, thread_factory=factory) as pool:
            first = pool.executor("thread")
            pool.reset("thread")
            assert pool.active_kinds() == []
            second = pool.executor("thread")
            assert second is not first
            assert factory.constructed == 2

    def test_invalid_kind_rejected(self):
        with ExecutorPool() as pool:
            with pytest.raises(ValidationError):
                pool.executor("fiber")

    def test_ensure(self):
        pool = ExecutorPool()
        assert ExecutorPool.ensure(pool) is pool
        assert isinstance(ExecutorPool.ensure(None), ExecutorPool)
        with pytest.raises(ValidationError):
            ExecutorPool.ensure(ThreadPoolExecutor(max_workers=1))


class TestEnginePooling:
    def test_pooled_thread_shards_bitwise_equal_to_per_call(self, workload):
        train, model, constraints, rejected = workload
        per_call = CounterfactualEngine(
            _generator(train, model, constraints), n_jobs=3
        ).generate_aligned(rejected)
        factory = _CountingFactory(ThreadPoolExecutor)
        with ExecutorPool(thread_factory=factory) as pool:
            engine = CounterfactualEngine(_generator(train, model, constraints),
                                          n_jobs=3, pool=pool)
            pooled_first = engine.generate_aligned(rejected)
            pooled_second = engine.generate_aligned(rejected)
        assert factory.constructed == 1  # reused across both calls
        for reference, first, second in zip(per_call, pooled_first, pooled_second):
            assert np.array_equal(reference.counterfactual, first.counterfactual)
            assert np.array_equal(reference.counterfactual, second.counterfactual)

    def test_engine_rejects_non_pool(self, workload):
        train, model, constraints, _ = workload
        with pytest.raises(ValidationError):
            CounterfactualEngine(_generator(train, model, constraints),
                                 pool=ThreadPoolExecutor(max_workers=1))

    def test_broken_process_pool_resets_and_falls_back(self, workload):
        """A pool whose process executor dies mid-call falls back to threads
        for that call and leaves the pool usable (fresh executor next time)."""
        train, model, constraints, rejected = workload

        class ExplodingExecutor:
            def __init__(self, *args, **kwargs):
                pass

            def map(self, *args, **kwargs):
                raise RuntimeError("worker died")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        factory = _CountingFactory(ExplodingExecutor)
        with ExecutorPool(process_factory=factory) as pool:
            engine = CounterfactualEngine(_generator(train, model, constraints),
                                          n_jobs=2, executor="process", pool=pool)
            results = engine.generate_aligned(rejected)  # thread fallback
            assert all(result is not None for result in results)
            assert factory.constructed == 1
            assert "process" not in pool.active_kinds()  # reset after breakage


class TestSessionPooling:
    def test_process_sweep_constructs_exactly_one_process_pool(self, workload):
        """The PR's acceptance criterion: a session-scoped sweep with
        executor="process" constructs exactly one ProcessPoolExecutor, with
        results bitwise-equal to per-call pools."""
        train, model, constraints, rejected = workload
        per_call = CounterfactualEngine(
            _generator(train, model, constraints), n_jobs=2, executor="process"
        ).generate_aligned(rejected)

        factory = _CountingFactory(ProcessPoolExecutor)
        pool = ExecutorPool(max_workers=2, process_factory=factory)
        with AuditSession(_generator(train, model, constraints), n_jobs=2,
                          executor="process", pool=pool) as session:
            # Three audits over three distinct populations: three sharded
            # engine passes, one worker pool.
            first = session.counterfactuals_for(rejected, np.arange(len(rejected)))
            session.counterfactuals_for(rejected + 0.25, np.arange(8))
            session.counterfactuals_for(rejected + 0.5, np.arange(8))
        assert factory.constructed == 1
        assert set(first) == {i for i, r in enumerate(per_call) if r is not None}
        for i, reference in enumerate(per_call):
            if reference is not None:
                assert np.array_equal(reference.counterfactual,
                                      first[i].counterfactual)

    def test_session_owns_and_closes_its_own_pool(self, workload):
        train, model, constraints, rejected = workload
        with AuditSession(_generator(train, model, constraints), n_jobs=2) as session:
            session.counterfactuals_for(rejected, np.arange(4))
            pool = session.pool
            assert pool.active_kinds() == ["thread"]
        with pytest.raises(ValidationError):
            pool.executor("thread")  # closed deterministically on exit
        session.close()  # idempotent

    def test_injected_pool_is_shared_not_owned(self, workload):
        train, model, constraints, rejected = workload
        with ExecutorPool(max_workers=2) as shared:
            with AuditSession(_generator(train, model, constraints), n_jobs=2,
                              pool=shared) as session:
                session.counterfactuals_for(rejected, np.arange(4))
            # The session exit must NOT shut the injected pool down.
            shared.executor("thread").submit(lambda: None).result()

    def test_sequential_session_never_spawns_workers(self, workload):
        train, model, constraints, rejected = workload
        with AuditSession(_generator(train, model, constraints)) as session:
            session.counterfactuals_for(rejected, np.arange(4))
            assert session.pool.active_kinds() == []
            assert session.pool.created_counts == {"thread": 0, "process": 0}
