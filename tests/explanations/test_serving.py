"""Tests for the serving layer: graph export parity, the ONNX-style backend,
the loopback fleet scoring server (hash routing, admission control) and the
coalescing remote client (per-graph lanes, dynamic windows, shed retry)."""

import threading
import time

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AuditSession,
    BatchModelAdapter,
    CoalescingScoringClient,
    ComputeGraph,
    CounterfactualEngine,
    ExecutorPool,
    GrowingSpheresCounterfactual,
    OnnxExportBackend,
    RemoteScoringBackend,
    ScoringServer,
    export_model,
    serve_fleet,
    serve_model,
)
from fairexp.fairness.mitigation import (
    FairLogisticRegression,
    RecourseRegularizedClassifier,
)
from fairexp.models import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)


def _model_zoo(train):
    """One fitted model per exportable family used across E1-E9."""
    return {
        "logistic": LogisticRegression(n_iter=600, random_state=0).fit(
            train.X, train.y),
        "fair_logistic": FairLogisticRegression(
            fairness_weight=3.0, n_iter=400, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values),
        "recourse_regularized": RecourseRegularizedClassifier(
            recourse_weight=2.0, n_iter=400, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values),
        "mlp": MLPClassifier(hidden_sizes=(12, 6), n_epochs=40, random_state=0).fit(
            train.X, train.y),
        "tree": DecisionTreeClassifier(max_depth=5, random_state=0).fit(
            train.X, train.y),
        "forest": RandomForestClassifier(n_estimators=7, max_depth=4,
                                         random_state=0).fit(train.X, train.y),
    }


@pytest.fixture(scope="module")
def zoo(loan_data):
    _, train, test = loan_data
    return _model_zoo(train), train, test


class TestExportParity:
    """The tentpole's acceptance criterion: bitwise-equal predict for every
    exportable model family E1-E9 audit."""

    @pytest.mark.parametrize("name", ["logistic", "fair_logistic",
                                      "recourse_regularized", "mlp", "tree",
                                      "forest"])
    def test_graph_predict_bitwise_equals_model_predict(self, zoo, name):
        models, train, test = zoo
        model = models[name]
        graph = export_model(model)
        for X in (test.X, train.X[:50], test.X[:1],
                  test.X + np.linspace(-0.5, 0.5, test.X.shape[1])):
            assert np.array_equal(graph.run(X), np.asarray(model.predict(X)))

    @pytest.mark.parametrize("name", ["logistic", "mlp", "forest"])
    def test_graph_roundtrips_through_npz(self, zoo, name, tmp_path):
        models, _, test = zoo
        graph = export_model(models[name])
        path = tmp_path / f"{name}.npz"
        graph.save(path)
        loaded = ComputeGraph.load(path)
        assert loaded.source == graph.source
        assert loaded.n_features == graph.n_features
        assert np.array_equal(loaded.run(test.X), graph.run(test.X))

    def test_export_rejects_unsupported_models(self):
        class OpaqueModel:
            def predict(self, X):
                return np.zeros(len(X), dtype=int)

        with pytest.raises(ValidationError, match="OpaqueModel"):
            export_model(OpaqueModel())

    def test_graph_rejects_wrong_feature_count(self, zoo):
        models, _, test = zoo
        graph = export_model(models["logistic"])
        with pytest.raises(ValidationError, match="features"):
            graph.run(test.X[:, :3])

    def test_load_rejects_non_graph_archive(self, tmp_path):
        path = tmp_path / "noise.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(ValidationError, match="not a compute-graph"):
            ComputeGraph.load(path)


class TestOnnxExportBackend:
    def test_backend_scores_without_the_model(self, zoo):
        models, _, test = zoo
        backend = OnnxExportBackend(models["logistic"])
        assert backend.releases_gil
        assert backend.name == "onnx"
        out = backend.predict(test.X)
        assert np.array_equal(out, models["logistic"].predict(test.X))
        assert backend.call_count == 1
        assert backend.row_count == test.X.shape[0]

    def test_backend_accepts_prebuilt_graph(self, zoo):
        models, _, test = zoo
        graph = export_model(models["forest"])
        backend = OnnxExportBackend(graph, name="forest-graph")
        assert np.array_equal(backend.predict(test.X),
                              models["forest"].predict(test.X))

    def test_verify_on_catches_unfaithful_graphs(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        OnnxExportBackend(model, verify_on=test.X)  # faithful: constructs
        graph = export_model(model)
        graph.ops[0]["b"] = graph.ops[0]["b"] + 10.0  # corrupt the intercept

        class Lying:
            pass

        backend = OnnxExportBackend(graph)  # graphs skip verification ...
        # ... but a model + corrupted-export combination must fail fast.
        lying = Lying()
        lying.coef_ = np.asarray(model.coef_) * -1.0
        lying.intercept_ = float(model.intercept_)
        lying.predict = model.predict
        with pytest.raises(ValidationError, match="diverges"):
            OnnxExportBackend(lying, verify_on=test.X)
        assert backend.predict(test.X).shape == (test.X.shape[0],)

    def test_engine_process_shards_ship_the_graph(self, zoo, loan_cf_generator):
        """The ONNX backend opts into process sharding: workers rebuild the
        (picklable, model-free) graph and their predict counts fold back."""
        models, train, test = zoo
        model = models["logistic"]
        rejected = test.X[model.predict(test.X) == 0][:8]
        constraints = loan_cf_generator.constraints

        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0)
        ).generate_aligned(rejected)

        backend = OnnxExportBackend(model)
        adapter = BatchModelAdapter(model, backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(adapter, train.X,
                                                 constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2, executor="process")
        sharded = engine.generate_aligned(rejected)
        assert backend.row_count > 0  # workers' rows folded back via add_counts
        for seq, par in zip(sequential, sharded):
            assert (seq is None) == (par is None)
            if seq is not None:
                assert np.array_equal(seq.counterfactual, par.counterfactual)


class TestScoringServer:
    def test_serves_graph_over_loopback(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            out = backend.predict(test.X)
            assert np.array_equal(out, model.predict(test.X))
            assert backend.call_count == 1
            assert backend.client.wire_call_count == 1
            assert server.request_count == 1
            assert server.row_count == test.X.shape[0]

    def test_server_close_is_idempotent(self, zoo):
        models, _, _ = zoo
        server = serve_model(models["logistic"])
        server.close()
        server.close()

    def test_bad_batch_raises_and_counts_nothing(self, zoo):
        """A server-side failure (wrong feature count -> 400) must raise in
        the caller WITHOUT inflating call/row accounting — the satellite
        counting fix, exercised over a real wire."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            with pytest.raises(ValidationError, match="rejected"):
                backend.predict(test.X[:, :3])
            assert backend.call_count == 0
            assert backend.row_count == 0
            assert backend.client.wire_call_count == 0
            out = backend.predict(test.X)  # the backend stays usable
            assert out.shape == (test.X.shape[0],)
            assert backend.call_count == 1


class TestCoalescing:
    def test_concurrent_callers_share_one_wire_call(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model) as server:
            client = CoalescingScoringClient(server.url, window=1.0)
            backends = [RemoteScoringBackend(client) for _ in range(4)]
            barrier = threading.Barrier(4)
            outputs: list = [None] * 4

            def score(k):
                barrier.wait(timeout=10)
                outputs[k] = backends[k].predict(test.X[k * 15:(k + 1) * 15])

            threads = [threading.Thread(target=score, args=(k,)) for k in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            reference = model.predict(test.X)
            for k in range(4):
                assert np.array_equal(outputs[k], reference[k * 15:(k + 1) * 15])
            # Four registered callers, four concurrent batches -> ONE wire
            # call (the leader waits for every registered peer, so the first
            # wave coalesces deterministically, not by racing the window).
            assert client.wire_call_count == 1
            assert client.coalesced_count == 3
            assert server.request_count == 1
            # Per-caller accounting is untouched by the stacking.
            assert [b.call_count for b in backends] == [1, 1, 1, 1]
            assert [b.row_count for b in backends] == [15, 15, 15, 15]

    def test_sequential_caller_never_waits_for_absent_peers(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            backend = RemoteScoringBackend(server.url, window=0.05)
            for _ in range(3):
                backend.predict(test.X[:10])
            # One registered caller: each dispatch flushes as soon as its
            # own batch is pending — no window-long stalls, no merging.
            assert backend.client.wire_call_count == 3

    def test_failed_wire_call_raises_in_every_coalesced_caller(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        server = serve_model(model)
        client = CoalescingScoringClient(server.url, window=0.5)
        backends = [RemoteScoringBackend(client) for _ in range(2)]
        server.close()  # the wire call will fail for the whole batch
        errors: list = [None] * 2
        barrier = threading.Barrier(2)

        def score(k):
            barrier.wait(timeout=10)
            try:
                backends[k].predict(test.X[:5])
            except Exception as error:  # noqa: BLE001 - asserting propagation
                errors[k] = error

        threads = [threading.Thread(target=score, args=(k,)) for k in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(error is not None for error in errors)
        assert client.wire_call_count == 0
        assert [b.call_count for b in backends] == [0, 0]

    def test_unregister_releases_the_window(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window=5.0)
            stays = RemoteScoringBackend(client)
            leaves = RemoteScoringBackend(client)
            leaves.close()
            import time
            start = time.monotonic()
            stays.predict(test.X[:5])
            # With the peer gone, the single registered caller dispatches
            # immediately instead of waiting out the 5s window.
            assert time.monotonic() - start < 2.0


class TestFleetRouting:
    """One server, many graphs: requests route by content hash."""

    FLEET = ["logistic", "tree", "forest"]

    def test_fleet_routes_each_graph_bitwise_correctly(self, zoo):
        models, _, test = zoo
        fleet = {name: models[name] for name in self.FLEET}
        graphs = {name: export_model(model) for name, model in fleet.items()}
        with serve_fleet(list(graphs.values())) as server:
            assert server.graph_keys() == [g.signature()
                                           for g in graphs.values()]
            client = CoalescingScoringClient(server.url, window=0.0)
            for name, graph in graphs.items():
                backend = RemoteScoringBackend(client, graph=graph)
                out = backend.predict(test.X)
                assert np.array_equal(out, fleet[name].predict(test.X)), name
                backend.close()
            # Per-graph accounting on the server: every lane saw exactly
            # one request for the full test matrix, none of them mixed.
            stats = server.stats()
            assert stats["requests"] == len(graphs)
            for graph in graphs.values():
                entry = stats["graphs"][graph.signature()]
                assert entry["requests"] == 1
                assert entry["rows"] == test.X.shape[0]

    def test_unknown_hash_is_rejected_not_misrouted(self, zoo):
        models, _, test = zoo
        with serve_fleet([models["logistic"], models["tree"]]) as server:
            backend = RemoteScoringBackend(server.url, window=0.0,
                                           graph="0" * 64)
            with pytest.raises(ValidationError, match="unknown graph"):
                backend.predict(test.X[:4])
            assert backend.call_count == 0

    def test_fleet_requires_the_routing_header(self, zoo):
        """A multi-graph server must never guess: header-less requests are
        a 400, not a dispatch to whichever graph registered first."""
        models, _, test = zoo
        with serve_fleet([models["logistic"], models["tree"]]) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)  # no graph
            with pytest.raises(ValidationError, match="X-Fairexp-Graph"):
                backend.predict(test.X[:4])

    def test_single_scorer_keeps_headerless_wire_shape(self, zoo):
        """A one-graph server still accepts the legacy header-less request
        (old clients keep working) AND the routed form."""
        models, _, test = zoo
        model = models["logistic"]
        graph = export_model(model)
        with ScoringServer(graph) as server:
            plain = RemoteScoringBackend(server.url, window=0.0)
            routed = RemoteScoringBackend(server.url, window=0.0, graph=graph)
            reference = model.predict(test.X)
            assert np.array_equal(plain.predict(test.X), reference)
            assert np.array_equal(routed.predict(test.X), reference)

    def test_lanes_never_share_a_wire_call_across_graphs(self, zoo):
        """Concurrent batches for DIFFERENT graphs must not coalesce: each
        graph's lane dispatches its own wire call even inside one window."""
        models, _, test = zoo
        graphs = [export_model(models[name]) for name in self.FLEET]
        with serve_fleet(graphs) as server:
            client = CoalescingScoringClient(server.url, window=1.0)
            backends = [RemoteScoringBackend(client, graph=g) for g in graphs]
            barrier = threading.Barrier(len(backends))
            outputs: list = [None] * len(backends)

            def score(k):
                barrier.wait(timeout=10)
                outputs[k] = backends[k].predict(test.X[:20])

            threads = [threading.Thread(target=score, args=(k,))
                       for k in range(len(backends))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            for k, name in enumerate(self.FLEET):
                assert np.array_equal(outputs[k],
                                      models[name].predict(test.X[:20]))
            assert client.wire_call_count == len(graphs)
            assert client.coalesced_count == 0
            assert server.request_count == len(graphs)

    def test_audit_sessions_share_one_fleet_server(self, zoo, loan_cf_generator):
        """Two sessions over two different models route through ONE server
        and reproduce their in-process counterfactuals bitwise."""
        models, train, test = zoo
        constraints = loan_cf_generator.constraints
        fleet = [models["logistic"], models["tree"]]
        graphs = [export_model(model) for model in fleet]
        references = []
        for model in fleet:
            session = AuditSession(GrowingSpheresCounterfactual(
                model, train.X, constraints=constraints, random_state=0))
            idx = np.flatnonzero(model.predict(test.X) == 0)[:4]
            references.append(session.counterfactuals_for(test.X, idx))
        with serve_fleet(graphs) as server:
            client = CoalescingScoringClient(server.url, window=0.005)
            for model, graph, reference in zip(fleet, graphs, references):
                backend = RemoteScoringBackend(client, graph=graph)
                session = AuditSession(
                    GrowingSpheresCounterfactual(model, train.X,
                                                 constraints=constraints,
                                                 random_state=0),
                    backend=backend)
                idx = np.flatnonzero(model.predict(test.X) == 0)[:4]
                remote = session.counterfactuals_for(test.X, idx)
                backend.close()
                assert set(remote) == set(reference)
                for i in reference:
                    assert np.array_equal(remote[i].counterfactual,
                                          reference[i].counterfactual)


class TestDynamicWindow:
    def test_numeric_window_stays_fixed(self, zoo):
        """Explicit numeric windows keep the exact fixed behaviour: no EWMA
        resizing, whatever the arrival pattern."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            backend = RemoteScoringBackend(server.url, window=0.02)
            client = backend.client
            assert not client.dynamic_window
            for _ in range(5):
                backend.predict(test.X[:3])
            assert client.current_window() == 0.02

    def test_auto_window_starts_wide_and_shrinks_under_load(self, zoo):
        """``window="auto"``: a fresh lane waits the upper bound (nothing is
        known yet), then rapid arrivals pull the window down toward the
        lower clamp."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window="auto",
                                             window_bounds=(0.001, 0.25))
            backend = RemoteScoringBackend(client)
            assert client.current_window() == 0.25
            for _ in range(25):  # back-to-back arrivals: ewma -> ~0
                backend.predict(test.X[:2])
            assert client.current_window() < 0.25
            stats = client.lane_stats()[""]
            assert stats["ewma_interval"] is not None
            assert stats["ewma_interval"] < 0.25

    def test_auto_window_is_clamped_to_bounds(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window="auto",
                                             window_bounds=(0.015, 0.04))
            backend = RemoteScoringBackend(client)
            for _ in range(25):
                backend.predict(test.X[:2])
            # Sub-millisecond arrivals push gain*ewma below the lower bound:
            # the clamp holds the lane at exactly window_bounds[0].
            assert client.current_window() == 0.015
            slow = client.lane_stats()[""]
            assert 0.015 <= slow["window"] <= 0.04

    def test_auto_lanes_size_independently(self, zoo):
        """Each graph's lane keeps its own EWMA: a busy lane shrinks while
        an untouched lane still waits the full upper bound."""
        models, _, test = zoo
        graphs = [export_model(models["logistic"]), export_model(models["tree"])]
        with serve_fleet(graphs) as server:
            client = CoalescingScoringClient(server.url, window="auto",
                                             window_bounds=(0.001, 0.2))
            busy = RemoteScoringBackend(client, graph=graphs[0])
            idle = RemoteScoringBackend(client, graph=graphs[1])
            for _ in range(25):
                busy.predict(test.X[:2])
            assert client.current_window(graphs[0]) < 0.2
            assert client.current_window(graphs[1]) == 0.2
            idle.close()
            busy.close()


class TestAdmissionControl:
    def test_exhausted_retries_raise_and_count_nothing(self, zoo):
        """A server wedged past its admission limit sheds every attempt; the
        client gives up after max_retries with a clean error and ZERO
        call/row accounting."""
        models, _, test = zoo
        with serve_model(models["logistic"], max_inflight=0) as server:
            backend = RemoteScoringBackend(server.url, window=0.0,
                                           max_retries=2, backoff=0.001)
            with pytest.raises(ValidationError, match="shed"):
                backend.predict(test.X[:8])
            assert backend.call_count == 0
            assert backend.row_count == 0
            client = backend.client
            assert client.wire_call_count == 0
            assert client.shed_count == 3      # initial + 2 retries
            assert client.retry_count == 2
            assert server.shed_count == 3
            assert server.stats()["graphs"][next(iter(server.graph_keys()))][
                "shed"] == 3

    def test_shed_then_retry_succeeds_with_exact_accounting(self, zoo):
        """Transient overload: the first dispatch sheds, the backoff ladder
        retries, the batch eventually lands — counted exactly once."""
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model, max_inflight=0) as server:
            backend = RemoteScoringBackend(server.url, window=0.0,
                                           max_retries=8, backoff=0.02)

            def lift_limit():
                time.sleep(0.1)
                server.max_inflight = None

            lifter = threading.Thread(target=lift_limit)
            lifter.start()
            out = backend.predict(test.X[:12])
            lifter.join(timeout=10)
            assert np.array_equal(out, model.predict(test.X[:12]))
            client = backend.client
            assert client.shed_count >= 1
            assert client.retry_count >= 1
            assert server.shed_count >= 1
            # Exactly-once accounting despite the shed/retry churn.
            assert backend.call_count == 1
            assert backend.row_count == 12
            assert client.wire_call_count == 1
            assert client.wire_row_count == 12
            assert server.request_count == 1
            assert server.row_count == 12

    def test_admitted_requests_track_peak_inflight(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"], max_inflight=4) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            backend.predict(test.X[:5])
            stats = server.stats()
            assert stats["max_inflight"] == 4
            assert stats["peak_inflight"] >= 1
            assert stats["inflight"] == 0
            assert stats["shed"] == 0

    def test_max_pending_requires_an_attached_pool(self, zoo):
        models, _, _ = zoo
        with pytest.raises(ValidationError, match="requires pool="):
            ScoringServer(export_model(models["logistic"]), max_pending=4)
        with pytest.raises(ValidationError, match="requires pool="):
            serve_fleet([models["logistic"]], max_pending=4)

    def test_pool_queue_depth_sheds_and_books_separately(self, zoo):
        """The ExecutorPool.pending() wiring: a saturated scorer pool sheds
        with the same fast 429 as max_inflight, booked as ``pool_shed``."""
        models, _, test = zoo
        pool = ExecutorPool(max_workers=2)
        try:
            with serve_fleet([export_model(models["logistic"])], pool=pool,
                             max_pending=0) as server:
                # max_pending=0: any queue depth (>= 0) refuses admission, so
                # every attempt sheds on pool depth — never on max_inflight.
                backend = RemoteScoringBackend(server.url, window=0.0,
                                               max_retries=2, backoff=0.001)
                with pytest.raises(ValidationError, match="shed"):
                    backend.predict(test.X[:8])
                stats = server.stats()
                assert stats["max_pending"] == 0
                assert stats["pool_shed"] == 3       # initial + 2 retries
                assert stats["shed"] == 3            # pool sheds count as sheds
                assert stats["requests"] == 0        # nothing was admitted
                assert backend.call_count == 0
                assert backend.row_count == 0
        finally:
            pool.shutdown()

    def test_pool_bound_admits_when_queue_is_shallow(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        pool = ExecutorPool(max_workers=2)
        try:
            with serve_fleet([export_model(model)], pool=pool,
                             max_pending=8) as server:
                backend = RemoteScoringBackend(server.url, window=0.0)
                out = backend.predict(test.X[:6])
                assert np.array_equal(out, model.predict(test.X[:6]))
                stats = server.stats()
                assert stats["max_pending"] == 8
                assert stats["pool_shed"] == 0
                assert stats["shed"] == 0
                assert stats["requests"] == 1
        finally:
            pool.shutdown()


class TestServerLifecycle:
    def test_context_manager_leaves_no_live_thread(self, zoo):
        """The satellite close() fix: after the context exits, the request
        loop thread has actually terminated — not merely been asked to."""
        models, _, _ = zoo
        with serve_model(models["logistic"]) as server:
            assert server._thread.is_alive()
        assert not server._thread.is_alive()
        server.close()  # idempotent after the context already closed

    def test_concurrent_close_is_safe_and_joins_once(self, zoo):
        models, _, _ = zoo
        server = serve_model(models["logistic"])
        threads = [threading.Thread(target=server.close) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert not any(thread.is_alive() for thread in threads)
        assert not server._thread.is_alive()

    def test_close_with_inflight_coalesced_batch_fails_clean(self, zoo):
        """Shutdown racing an open dispatch window: the leader's wire call
        hits the closed socket and every coalesced caller gets a clean
        backend exception — no hang, no call/row inflation."""
        models, _, test = zoo
        server = serve_model(models["logistic"])
        client = CoalescingScoringClient(server.url, window=0.75)
        backends = [RemoteScoringBackend(client) for _ in range(3)]
        # Only 2 of the 3 registered peers submit, so the leader holds the
        # window open (waiting for the third) while the server goes away.
        errors: list = [None, None]
        barrier = threading.Barrier(3)

        def score(k):
            barrier.wait(timeout=10)
            try:
                backends[k].predict(test.X[:5])
            except Exception as error:  # noqa: BLE001 - asserting propagation
                errors[k] = error

        threads = [threading.Thread(target=score, args=(k,)) for k in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=10)
        time.sleep(0.2)          # let the leader start waiting in-window
        server.close()           # returns only once the loop thread exited
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        for error in errors:
            assert isinstance(error, ValidationError)
            assert "unreachable" in str(error)
        assert client.wire_call_count == 0
        assert client.wire_row_count == 0
        assert [b.call_count for b in backends] == [0, 0, 0]
        assert [b.row_count for b in backends] == [0, 0, 0]


class TestStatsEndpoint:
    def test_stats_reports_per_graph_counters_over_http(self, zoo):
        import json
        import urllib.request

        models, _, test = zoo
        graphs = [export_model(models["logistic"]), export_model(models["tree"])]
        with serve_fleet(graphs) as server:
            client = CoalescingScoringClient(server.url, window=0.0)
            for graph in graphs:
                backend = RemoteScoringBackend(client, graph=graph)
                backend.predict(test.X[:10])
                backend.close()
            with urllib.request.urlopen(f"{server.url}/stats",
                                        timeout=10) as reply:
                stats = json.loads(reply.read().decode("utf-8"))
        assert stats["requests"] == 2
        assert stats["rows"] == 20
        assert stats["shed"] == 0
        assert stats["max_inflight"] is None
        for graph in graphs:
            entry = stats["graphs"][graph.signature()]
            assert entry["requests"] == 1
            assert entry["rows"] == 10
            assert entry["client_batches"] == 1
            assert entry["coalescing_factor"] == 1.0
            assert entry["window"] == 0.0
            assert entry["source"] == graph.source

    def test_stats_fold_in_client_coalescing_and_window(self, zoo):
        """The X-Fairexp-Batches / X-Fairexp-Window telemetry: a coalesced
        wire call raises the server-side coalescing factor above 1."""
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model) as server:
            client = CoalescingScoringClient(server.url, window=1.0)
            backends = [RemoteScoringBackend(client) for _ in range(3)]
            barrier = threading.Barrier(3)

            def score(k):
                barrier.wait(timeout=10)
                backends[k].predict(test.X[k * 5:(k + 1) * 5])

            threads = [threading.Thread(target=score, args=(k,))
                       for k in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            entry = server.stats()["graphs"][server.graph_keys()[0]]
            assert entry["requests"] == 1
            assert entry["client_batches"] == 3
            assert entry["coalescing_factor"] == 3.0
            assert entry["window"] == 1.0

    def test_attached_pool_utilization_rides_along(self, zoo):
        models, _, test = zoo
        pool = ExecutorPool(max_workers=2)
        try:
            with serve_fleet([export_model(models["logistic"])],
                             pool=pool) as server:
                backend = RemoteScoringBackend(server.url, window=0.0)
                backend.predict(test.X[:6])
                stats = server.stats()
                assert stats["pool"]["thread"]["executors_created"] == 1
                assert stats["pool"]["thread"]["peak_pending"] >= 1
                assert pool.pending("thread") == 0
        finally:
            pool.shutdown()


class TestServeCLI:
    """``python -m fairexp serve`` fleet flags and the /stats pretty-printer
    (exercised in-process through ``main``; the subprocess shape is covered
    by benchmarks/serving_workload.py and the CI smoke)."""

    @staticmethod
    def _save_graphs(zoo, tmp_path, names):
        models, _, _ = zoo
        paths = []
        for name in names:
            graph = export_model(models[name])
            path = tmp_path / f"{name}.npz"
            graph.save(path)
            paths.append((str(path), graph))
        return paths

    @pytest.fixture()
    def nonblocking_serve(self, monkeypatch):
        """Make serve_until_interrupted return immediately so the CLI path
        runs end to end (print + close) without parking a thread."""
        monkeypatch.setattr(ScoringServer, "serve_until_interrupted",
                            lambda self: None)

    def test_serve_single_graph_prints_legacy_parseable_line(
            self, zoo, tmp_path, capsys, nonblocking_serve):
        from fairexp.cli import main

        (path, graph), = self._save_graphs(zoo, tmp_path, ["logistic"])
        assert main(["serve", "--graph", path]) == 0
        lines = capsys.readouterr().out.splitlines()
        # First line keeps the launcher contract: URL is the last token.
        assert lines[0].startswith("serving LogisticRegression (")
        assert lines[0].rsplit(" ", 1)[-1].startswith("http://127.0.0.1:")
        assert graph.signature() in lines[1]

    def test_serve_fleet_prints_one_routing_line_per_graph(
            self, zoo, tmp_path, capsys, nonblocking_serve):
        from fairexp.cli import main

        saved = self._save_graphs(zoo, tmp_path, ["logistic", "tree"])
        assert main(["serve", "--graph-dir", str(tmp_path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("serving 2 graphs on http://")
        routed = "\n".join(lines[1:])
        for _, graph in saved:
            assert graph.signature() in routed

    def test_serve_requires_some_graph_source(self):
        from fairexp.cli import main

        with pytest.raises(SystemExit, match="--graph"):
            main(["serve"])

    def test_serve_rejects_missing_archive_and_dir(self, tmp_path):
        from fairexp.cli import main

        with pytest.raises(SystemExit, match="does not exist"):
            main(["serve", "--graph", str(tmp_path / "nope.npz")])
        with pytest.raises(SystemExit, match="does not exist"):
            main(["serve", "--graph-dir", str(tmp_path / "nope")])

    def test_stats_url_pretty_prints_a_running_fleet(self, zoo, capsys):
        from fairexp.cli import main

        models, _, test = zoo
        graphs = [export_model(models["logistic"]), export_model(models["tree"])]
        with serve_fleet(graphs) as server:
            backend = RemoteScoringBackend(server.url, window=0.0,
                                           graph=graphs[0])
            backend.predict(test.X[:7])
            backend.close()
            assert main(["serve", "--stats-url", server.url]) == 0
        out = capsys.readouterr().out
        assert "1 requests, 7 rows, 0 shed" in out
        assert "GRAPH" in out and "COALESCE" in out
        assert graphs[0].signature()[:12] in out
        assert "LogisticRegression" in out

    def test_stats_url_unreachable_is_an_error(self):
        from fairexp.cli import main

        with pytest.raises(SystemExit, match="could not fetch stats"):
            main(["serve", "--stats-url", "http://127.0.0.1:9"])


class TestRemoteSession:
    def test_audit_session_over_remote_backend_matches_in_process(
            self, zoo, loan_cf_generator):
        models, train, test = zoo
        model = models["logistic"]
        constraints = loan_cf_generator.constraints
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:6]

        reference_session = AuditSession(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0))
        reference = reference_session.counterfactuals_for(test.X, rejected_idx)

        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            session = AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=constraints,
                                             random_state=0),
                backend=backend,
            )
            remote = session.counterfactuals_for(test.X, rejected_idx)
            backend.close()
        assert set(remote) == set(reference)
        for i in reference:
            assert np.array_equal(remote[i].counterfactual,
                                  reference[i].counterfactual)
        assert session.predict_row_count == reference_session.predict_row_count


class TestBackendClose:
    def test_double_close_keeps_peers_registered(self, zoo):
        """close() is idempotent: a second close (the natural finally-block
        pattern) must not decrement another live caller's registration."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window=5.0)
            stays = RemoteScoringBackend(client)
            leaves = RemoteScoringBackend(client)
            leaves.close()
            leaves.close()  # idempotent: must not unregister `stays`
            assert client.registered_count == 1
            import time
            start = time.monotonic()
            stays.predict(test.X[:5])  # dispatches immediately, no 5s stall
            assert time.monotonic() - start < 2.0


class TestServingStoreIntegration:
    def test_onnx_sessions_persist_and_warm_start(self, zoo, loan_cf_generator,
                                                  tmp_path):
        """An ONNX-backed session stores its rows under the graph's content
        hash: a second session over the same graph warm-starts with zero
        engine predict calls, and in-process sessions key separately."""
        from fairexp.explanations import CounterfactualStore

        models, train, test = zoo
        model = models["logistic"]
        constraints = loan_cf_generator.constraints
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:5]

        def onnx_session():
            return AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=constraints,
                                             random_state=0),
                backend=OnnxExportBackend(model), store=tmp_path,
            )

        first = onnx_session()
        first.counterfactuals_for(test.X, rejected_idx)
        assert first.engine_predict_call_count > 0
        assert len(CounterfactualStore(tmp_path).entries()) == 1

        warm = onnx_session()
        warm.counterfactuals_for(test.X, rejected_idx)
        assert warm.engine_predict_call_count == 0      # pure store read
        assert warm.store_row_hits == len(rejected_idx)

        # An in-process session over the same population keys a NEW entry:
        # graph-backed and model-backed dispatch never alias by design.
        plain = AuditSession(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0),
            store=tmp_path,
        )
        plain.counterfactuals_for(test.X, rejected_idx)
        assert len(CounterfactualStore(tmp_path).entries()) == 2

    def test_remote_sessions_skip_the_store(self, zoo, loan_cf_generator,
                                            tmp_path):
        """A remote scorer has no reproducible identity (the model lives
        behind a URL), so store publishing is skipped — correctness first."""
        from fairexp.explanations import CounterfactualStore

        models, train, test = zoo
        model = models["logistic"]
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:3]
        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            with AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=loan_cf_generator.constraints,
                                             random_state=0),
                backend=backend, store=tmp_path,
            ) as session:
                results = session.counterfactuals_for(test.X, rejected_idx)
            backend.close()
        assert results
        assert CounterfactualStore(tmp_path).entries() == []
