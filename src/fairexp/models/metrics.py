"""Classification metrics used throughout fairexp.

These are deliberately small, dependency-free implementations of the standard
metrics so the fairness layer can decompose them per group without relying on
external ML frameworks.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..utils import check_consistent_length, safe_divide

__all__ = [
    "confusion_matrix",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "true_positive_rate",
    "false_positive_rate",
    "false_negative_rate",
    "true_negative_rate",
    "selection_rate",
    "roc_auc_score",
    "roc_curve",
    "log_loss",
    "brier_score",
    "calibration_curve",
]


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Return the 2x2 confusion matrix ``[[tn, fp], [fn, tp]]`` for binary labels."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    check_consistent_length(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=int)
    for true_label in (0, 1):
        for pred_label in (0, 1):
            matrix[true_label, pred_label] = int(
                np.sum((y_true == true_label) & (y_pred == pred_label))
            )
    return matrix


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions matching the ground truth."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def precision_score(y_true, y_pred) -> float:
    """TP / (TP + FP); 0.0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    return safe_divide(matrix[1, 1], matrix[1, 1] + matrix[0, 1])


def recall_score(y_true, y_pred) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    return safe_divide(matrix[1, 1], matrix[1, 1] + matrix[1, 0])


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    return safe_divide(2 * precision * recall, precision + recall)


def true_positive_rate(y_true, y_pred) -> float:
    """Alias for recall (sensitivity)."""
    return recall_score(y_true, y_pred)


def false_positive_rate(y_true, y_pred) -> float:
    """FP / (FP + TN)."""
    matrix = confusion_matrix(y_true, y_pred)
    return safe_divide(matrix[0, 1], matrix[0, 1] + matrix[0, 0])


def false_negative_rate(y_true, y_pred) -> float:
    """FN / (FN + TP)."""
    matrix = confusion_matrix(y_true, y_pred)
    return safe_divide(matrix[1, 0], matrix[1, 0] + matrix[1, 1])


def true_negative_rate(y_true, y_pred) -> float:
    """TN / (TN + FP)."""
    matrix = confusion_matrix(y_true, y_pred)
    return safe_divide(matrix[0, 0], matrix[0, 0] + matrix[0, 1])


def selection_rate(y_pred) -> float:
    """Fraction of samples receiving the favourable (positive) prediction."""
    y_pred = np.asarray(y_pred, dtype=float)
    if y_pred.size == 0:
        return 0.0
    return float(np.mean(y_pred == 1))


def roc_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(fpr, tpr, thresholds)`` for a binary classification score."""
    y_true = np.asarray(y_true, dtype=int)
    y_score = np.asarray(y_score, dtype=float)
    check_consistent_length(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_true = y_true[order]
    y_score = y_score[order]

    distinct = np.flatnonzero(np.diff(y_score)) if y_score.size > 1 else np.array([], dtype=int)
    threshold_idx = np.concatenate([distinct, [y_true.size - 1]])

    tps = np.cumsum(y_true)[threshold_idx]
    fps = 1 + threshold_idx - tps
    n_pos = max(int(y_true.sum()), 1)
    n_neg = max(int((1 - y_true).sum()), 1)
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], y_score[threshold_idx]])
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the trapezoidal rule."""
    y_true = np.asarray(y_true, dtype=int)
    if len(np.unique(y_true)) < 2:
        raise ValidationError("ROC AUC is undefined with a single class present")
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return float(np.trapezoid(tpr, fpr))


def log_loss(y_true, y_proba, *, eps: float = 1e-12) -> float:
    """Binary cross-entropy between labels and predicted positive-class probabilities."""
    y_true = np.asarray(y_true, dtype=float)
    y_proba = np.clip(np.asarray(y_proba, dtype=float), eps, 1 - eps)
    check_consistent_length(y_true, y_proba)
    return float(-np.mean(y_true * np.log(y_proba) + (1 - y_true) * np.log(1 - y_proba)))


def brier_score(y_true, y_proba) -> float:
    """Mean squared error between labels and predicted probabilities."""
    y_true = np.asarray(y_true, dtype=float)
    y_proba = np.asarray(y_proba, dtype=float)
    check_consistent_length(y_true, y_proba)
    return float(np.mean((y_true - y_proba) ** 2))


def calibration_curve(y_true, y_proba, *, n_bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(mean_predicted, fraction_positive)`` per probability bin.

    Bins with no samples are omitted from both arrays.
    """
    y_true = np.asarray(y_true, dtype=float)
    y_proba = np.asarray(y_proba, dtype=float)
    check_consistent_length(y_true, y_proba)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bin_ids = np.clip(np.digitize(y_proba, edges[1:-1]), 0, n_bins - 1)
    mean_predicted, fraction_positive = [], []
    for b in range(n_bins):
        mask = bin_ids == b
        if not np.any(mask):
            continue
        mean_predicted.append(float(y_proba[mask].mean()))
        fraction_positive.append(float(y_true[mask].mean()))
    return np.asarray(mean_predicted), np.asarray(fraction_positive)
