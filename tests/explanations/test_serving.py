"""Tests for the serving layer: graph export parity, the ONNX-style backend,
the loopback scoring server and the coalescing remote client."""

import threading

import numpy as np
import pytest

from fairexp.exceptions import ValidationError
from fairexp.explanations import (
    AuditSession,
    BatchModelAdapter,
    CoalescingScoringClient,
    ComputeGraph,
    CounterfactualEngine,
    GrowingSpheresCounterfactual,
    OnnxExportBackend,
    RemoteScoringBackend,
    ScoringServer,
    export_model,
    serve_model,
)
from fairexp.fairness.mitigation import (
    FairLogisticRegression,
    RecourseRegularizedClassifier,
)
from fairexp.models import (
    DecisionTreeClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
)


def _model_zoo(train):
    """One fitted model per exportable family used across E1-E9."""
    return {
        "logistic": LogisticRegression(n_iter=600, random_state=0).fit(
            train.X, train.y),
        "fair_logistic": FairLogisticRegression(
            fairness_weight=3.0, n_iter=400, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values),
        "recourse_regularized": RecourseRegularizedClassifier(
            recourse_weight=2.0, n_iter=400, random_state=0
        ).fit(train.X, train.y, sensitive=train.sensitive_values),
        "mlp": MLPClassifier(hidden_sizes=(12, 6), n_epochs=40, random_state=0).fit(
            train.X, train.y),
        "tree": DecisionTreeClassifier(max_depth=5, random_state=0).fit(
            train.X, train.y),
        "forest": RandomForestClassifier(n_estimators=7, max_depth=4,
                                         random_state=0).fit(train.X, train.y),
    }


@pytest.fixture(scope="module")
def zoo(loan_data):
    _, train, test = loan_data
    return _model_zoo(train), train, test


class TestExportParity:
    """The tentpole's acceptance criterion: bitwise-equal predict for every
    exportable model family E1-E9 audit."""

    @pytest.mark.parametrize("name", ["logistic", "fair_logistic",
                                      "recourse_regularized", "mlp", "tree",
                                      "forest"])
    def test_graph_predict_bitwise_equals_model_predict(self, zoo, name):
        models, train, test = zoo
        model = models[name]
        graph = export_model(model)
        for X in (test.X, train.X[:50], test.X[:1],
                  test.X + np.linspace(-0.5, 0.5, test.X.shape[1])):
            assert np.array_equal(graph.run(X), np.asarray(model.predict(X)))

    @pytest.mark.parametrize("name", ["logistic", "mlp", "forest"])
    def test_graph_roundtrips_through_npz(self, zoo, name, tmp_path):
        models, _, test = zoo
        graph = export_model(models[name])
        path = tmp_path / f"{name}.npz"
        graph.save(path)
        loaded = ComputeGraph.load(path)
        assert loaded.source == graph.source
        assert loaded.n_features == graph.n_features
        assert np.array_equal(loaded.run(test.X), graph.run(test.X))

    def test_export_rejects_unsupported_models(self):
        class OpaqueModel:
            def predict(self, X):
                return np.zeros(len(X), dtype=int)

        with pytest.raises(ValidationError, match="OpaqueModel"):
            export_model(OpaqueModel())

    def test_graph_rejects_wrong_feature_count(self, zoo):
        models, _, test = zoo
        graph = export_model(models["logistic"])
        with pytest.raises(ValidationError, match="features"):
            graph.run(test.X[:, :3])

    def test_load_rejects_non_graph_archive(self, tmp_path):
        path = tmp_path / "noise.npz"
        np.savez(path, junk=np.arange(3))
        with pytest.raises(ValidationError, match="not a compute-graph"):
            ComputeGraph.load(path)


class TestOnnxExportBackend:
    def test_backend_scores_without_the_model(self, zoo):
        models, _, test = zoo
        backend = OnnxExportBackend(models["logistic"])
        assert backend.releases_gil
        assert backend.name == "onnx"
        out = backend.predict(test.X)
        assert np.array_equal(out, models["logistic"].predict(test.X))
        assert backend.call_count == 1
        assert backend.row_count == test.X.shape[0]

    def test_backend_accepts_prebuilt_graph(self, zoo):
        models, _, test = zoo
        graph = export_model(models["forest"])
        backend = OnnxExportBackend(graph, name="forest-graph")
        assert np.array_equal(backend.predict(test.X),
                              models["forest"].predict(test.X))

    def test_verify_on_catches_unfaithful_graphs(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        OnnxExportBackend(model, verify_on=test.X)  # faithful: constructs
        graph = export_model(model)
        graph.ops[0]["b"] = graph.ops[0]["b"] + 10.0  # corrupt the intercept

        class Lying:
            pass

        backend = OnnxExportBackend(graph)  # graphs skip verification ...
        # ... but a model + corrupted-export combination must fail fast.
        lying = Lying()
        lying.coef_ = np.asarray(model.coef_) * -1.0
        lying.intercept_ = float(model.intercept_)
        lying.predict = model.predict
        with pytest.raises(ValidationError, match="diverges"):
            OnnxExportBackend(lying, verify_on=test.X)
        assert backend.predict(test.X).shape == (test.X.shape[0],)

    def test_engine_process_shards_ship_the_graph(self, zoo, loan_cf_generator):
        """The ONNX backend opts into process sharding: workers rebuild the
        (picklable, model-free) graph and their predict counts fold back."""
        models, train, test = zoo
        model = models["logistic"]
        rejected = test.X[model.predict(test.X) == 0][:8]
        constraints = loan_cf_generator.constraints

        sequential = CounterfactualEngine(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0)
        ).generate_aligned(rejected)

        backend = OnnxExportBackend(model)
        adapter = BatchModelAdapter(model, backend=backend, cache=False)
        generator = GrowingSpheresCounterfactual(adapter, train.X,
                                                 constraints=constraints,
                                                 random_state=0)
        engine = CounterfactualEngine(generator, n_jobs=2, executor="process")
        sharded = engine.generate_aligned(rejected)
        assert backend.row_count > 0  # workers' rows folded back via add_counts
        for seq, par in zip(sequential, sharded):
            assert (seq is None) == (par is None)
            if seq is not None:
                assert np.array_equal(seq.counterfactual, par.counterfactual)


class TestScoringServer:
    def test_serves_graph_over_loopback(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            out = backend.predict(test.X)
            assert np.array_equal(out, model.predict(test.X))
            assert backend.call_count == 1
            assert backend.client.wire_call_count == 1
            assert server.request_count == 1
            assert server.row_count == test.X.shape[0]

    def test_server_close_is_idempotent(self, zoo):
        models, _, _ = zoo
        server = serve_model(models["logistic"])
        server.close()
        server.close()

    def test_bad_batch_raises_and_counts_nothing(self, zoo):
        """A server-side failure (wrong feature count -> 400) must raise in
        the caller WITHOUT inflating call/row accounting — the satellite
        counting fix, exercised over a real wire."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            with pytest.raises(ValidationError, match="rejected"):
                backend.predict(test.X[:, :3])
            assert backend.call_count == 0
            assert backend.row_count == 0
            assert backend.client.wire_call_count == 0
            out = backend.predict(test.X)  # the backend stays usable
            assert out.shape == (test.X.shape[0],)
            assert backend.call_count == 1


class TestCoalescing:
    def test_concurrent_callers_share_one_wire_call(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        with serve_model(model) as server:
            client = CoalescingScoringClient(server.url, window=1.0)
            backends = [RemoteScoringBackend(client) for _ in range(4)]
            barrier = threading.Barrier(4)
            outputs: list = [None] * 4

            def score(k):
                barrier.wait(timeout=10)
                outputs[k] = backends[k].predict(test.X[k * 15:(k + 1) * 15])

            threads = [threading.Thread(target=score, args=(k,)) for k in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            reference = model.predict(test.X)
            for k in range(4):
                assert np.array_equal(outputs[k], reference[k * 15:(k + 1) * 15])
            # Four registered callers, four concurrent batches -> ONE wire
            # call (the leader waits for every registered peer, so the first
            # wave coalesces deterministically, not by racing the window).
            assert client.wire_call_count == 1
            assert client.coalesced_count == 3
            assert server.request_count == 1
            # Per-caller accounting is untouched by the stacking.
            assert [b.call_count for b in backends] == [1, 1, 1, 1]
            assert [b.row_count for b in backends] == [15, 15, 15, 15]

    def test_sequential_caller_never_waits_for_absent_peers(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            backend = RemoteScoringBackend(server.url, window=0.05)
            for _ in range(3):
                backend.predict(test.X[:10])
            # One registered caller: each dispatch flushes as soon as its
            # own batch is pending — no window-long stalls, no merging.
            assert backend.client.wire_call_count == 3

    def test_failed_wire_call_raises_in_every_coalesced_caller(self, zoo):
        models, _, test = zoo
        model = models["logistic"]
        server = serve_model(model)
        client = CoalescingScoringClient(server.url, window=0.5)
        backends = [RemoteScoringBackend(client) for _ in range(2)]
        server.close()  # the wire call will fail for the whole batch
        errors: list = [None] * 2
        barrier = threading.Barrier(2)

        def score(k):
            barrier.wait(timeout=10)
            try:
                backends[k].predict(test.X[:5])
            except Exception as error:  # noqa: BLE001 - asserting propagation
                errors[k] = error

        threads = [threading.Thread(target=score, args=(k,)) for k in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert all(error is not None for error in errors)
        assert client.wire_call_count == 0
        assert [b.call_count for b in backends] == [0, 0]

    def test_unregister_releases_the_window(self, zoo):
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window=5.0)
            stays = RemoteScoringBackend(client)
            leaves = RemoteScoringBackend(client)
            leaves.close()
            import time
            start = time.monotonic()
            stays.predict(test.X[:5])
            # With the peer gone, the single registered caller dispatches
            # immediately instead of waiting out the 5s window.
            assert time.monotonic() - start < 2.0


class TestRemoteSession:
    def test_audit_session_over_remote_backend_matches_in_process(
            self, zoo, loan_cf_generator):
        models, train, test = zoo
        model = models["logistic"]
        constraints = loan_cf_generator.constraints
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:6]

        reference_session = AuditSession(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0))
        reference = reference_session.counterfactuals_for(test.X, rejected_idx)

        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            session = AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=constraints,
                                             random_state=0),
                backend=backend,
            )
            remote = session.counterfactuals_for(test.X, rejected_idx)
            backend.close()
        assert set(remote) == set(reference)
        for i in reference:
            assert np.array_equal(remote[i].counterfactual,
                                  reference[i].counterfactual)
        assert session.predict_row_count == reference_session.predict_row_count


class TestBackendClose:
    def test_double_close_keeps_peers_registered(self, zoo):
        """close() is idempotent: a second close (the natural finally-block
        pattern) must not decrement another live caller's registration."""
        models, _, test = zoo
        with serve_model(models["logistic"]) as server:
            client = CoalescingScoringClient(server.url, window=5.0)
            stays = RemoteScoringBackend(client)
            leaves = RemoteScoringBackend(client)
            leaves.close()
            leaves.close()  # idempotent: must not unregister `stays`
            assert client.registered_count == 1
            import time
            start = time.monotonic()
            stays.predict(test.X[:5])  # dispatches immediately, no 5s stall
            assert time.monotonic() - start < 2.0


class TestServingStoreIntegration:
    def test_onnx_sessions_persist_and_warm_start(self, zoo, loan_cf_generator,
                                                  tmp_path):
        """An ONNX-backed session stores its rows under the graph's content
        hash: a second session over the same graph warm-starts with zero
        engine predict calls, and in-process sessions key separately."""
        from fairexp.explanations import CounterfactualStore

        models, train, test = zoo
        model = models["logistic"]
        constraints = loan_cf_generator.constraints
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:5]

        def onnx_session():
            return AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=constraints,
                                             random_state=0),
                backend=OnnxExportBackend(model), store=tmp_path,
            )

        first = onnx_session()
        first.counterfactuals_for(test.X, rejected_idx)
        assert first.engine_predict_call_count > 0
        assert len(CounterfactualStore(tmp_path).entries()) == 1

        warm = onnx_session()
        warm.counterfactuals_for(test.X, rejected_idx)
        assert warm.engine_predict_call_count == 0      # pure store read
        assert warm.store_row_hits == len(rejected_idx)

        # An in-process session over the same population keys a NEW entry:
        # graph-backed and model-backed dispatch never alias by design.
        plain = AuditSession(
            GrowingSpheresCounterfactual(model, train.X, constraints=constraints,
                                         random_state=0),
            store=tmp_path,
        )
        plain.counterfactuals_for(test.X, rejected_idx)
        assert len(CounterfactualStore(tmp_path).entries()) == 2

    def test_remote_sessions_skip_the_store(self, zoo, loan_cf_generator,
                                            tmp_path):
        """A remote scorer has no reproducible identity (the model lives
        behind a URL), so store publishing is skipped — correctness first."""
        from fairexp.explanations import CounterfactualStore

        models, train, test = zoo
        model = models["logistic"]
        rejected_idx = np.flatnonzero(model.predict(test.X) == 0)[:3]
        with serve_model(model) as server:
            backend = RemoteScoringBackend(server.url, window=0.0)
            with AuditSession(
                GrowingSpheresCounterfactual(model, train.X,
                                             constraints=loan_cf_generator.constraints,
                                             random_state=0),
                backend=backend, store=tmp_path,
            ) as session:
                results = session.counterfactuals_for(test.X, rejected_idx)
            backend.close()
        assert results
        assert CounterfactualStore(tmp_path).entries() == []
