"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from .base import BaseClassifier

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(BaseClassifier):
    """Naive Bayes with per-class Gaussian feature likelihoods.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every variance for
        numerical stability.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None
        self.var_: np.ndarray | None = None
        self.class_prior_: np.ndarray | None = None

    def fit(self, X, y, sample_weight=None) -> "GaussianNaiveBayes":
        """Estimate per-class Gaussian parameters; returns ``self``."""
        X, y = self._validate_fit_input(X, y)
        n_classes = self.classes_.shape[0]
        n_features = X.shape[1]
        if sample_weight is None:
            sample_weight = np.ones(X.shape[0])
        else:
            sample_weight = np.asarray(sample_weight, dtype=float)

        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)

        for i, cls in enumerate(self.classes_):
            mask = y == cls
            weights = sample_weight[mask]
            weights = weights / weights.sum()
            self.theta_[i] = np.average(X[mask], axis=0, weights=weights)
            self.var_[i] = np.average((X[mask] - self.theta_[i]) ** 2, axis=0, weights=weights)
            self.class_prior_[i] = sample_weight[mask].sum() / sample_weight.sum()

        epsilon = self.var_smoothing * float(np.var(X, axis=0).max())
        self.var_ += max(epsilon, 1e-12)
        self._fitted = True
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        joint = np.zeros((X.shape[0], self.classes_.shape[0]))
        for i in range(self.classes_.shape[0]):
            log_prior = np.log(self.class_prior_[i] + 1e-12)
            log_likelihood = -0.5 * np.sum(
                np.log(2.0 * np.pi * self.var_[i]) + (X - self.theta_[i]) ** 2 / self.var_[i],
                axis=1,
            )
            joint[:, i] = log_prior + log_likelihood
        return joint

    def predict_proba(self, X) -> np.ndarray:
        """Class-membership probabilities for each row of ``X``."""
        X = self._validate_predict_input(X)
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        return proba / proba.sum(axis=1, keepdims=True)
