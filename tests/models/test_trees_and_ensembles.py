"""Tests for decision trees, random forests and the other classifiers."""

import numpy as np
import pytest

from fairexp.exceptions import NotFittedError, ValidationError
from fairexp.models import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    MLPClassifier,
    RandomForestClassifier,
)


def xor_data(rng, n=400, noise=0.1):
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X += rng.normal(0, noise, X.shape)
    return X, y


def blobs(rng, n=300, gap=3.0):
    X0 = rng.normal(-gap / 2, 1.0, (n // 2, 3))
    X1 = rng.normal(gap / 2, 1.0, (n // 2, 3))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestDecisionTree:
    def test_learns_xor(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_max_depth_respected(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_min_samples_leaf(self, rng):
        X, y = xor_data(rng, n=200)
        model = DecisionTreeClassifier(min_samples_leaf=40).fit(X, y)

        def check(node):
            if node.is_leaf:
                assert node.n_samples >= 40
                return
            check(node.left)
            check(node.right)

        check(model.root_)

    def test_feature_importances_sum_to_one(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert model.feature_importances_.sum() == pytest.approx(1.0)
        assert np.all(model.feature_importances_ >= 0)

    def test_irrelevant_feature_gets_low_importance(self, rng):
        X, y = blobs(rng)
        X = np.column_stack([X, rng.normal(size=X.shape[0])])
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert model.feature_importances_[-1] < 0.2

    def test_predict_proba_valid_distribution(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_decision_path_consistent_with_prediction(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        path = model.decision_path(X[0])
        assert all(isinstance(step, tuple) and len(step) == 3 for step in path)

    def test_export_rules_covers_all_leaves(self, rng):
        X, y = xor_data(rng)
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        rules = model.export_rules(["a", "b"])
        assert len(rules) == model.n_leaves()
        assert all(rule.startswith("IF ") for rule in rules)

    def test_single_class_rejected(self, rng):
        X = rng.normal(size=(20, 2))
        with pytest.raises(ValidationError):
            DecisionTreeClassifier().fit(X, np.zeros(20, dtype=int))

    def test_sample_weight_shifts_majority(self, rng):
        X, y = xor_data(rng, n=200, noise=0.3)
        weights = np.where(y == 1, 20.0, 1.0)
        model = DecisionTreeClassifier(max_depth=1).fit(X, y, sample_weight=weights)
        assert model.predict(X).mean() > y.mean()


class TestRandomForest:
    def test_better_or_equal_to_single_stump_on_xor(self, rng):
        X, y = xor_data(rng)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        forest = RandomForestClassifier(n_estimators=20, max_depth=4, random_state=0).fit(X, y)
        assert forest.score(X, y) >= stump.score(X, y)

    def test_number_of_estimators(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=7).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_predict_proba_distribution(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=10).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.shape == (X.shape[0], 2)

    def test_feature_importances_shape(self, rng):
        X, y = blobs(rng)
        forest = RandomForestClassifier(n_estimators=10).fit(X, y)
        assert forest.feature_importances_.shape == (3,)


class TestGaussianNaiveBayes:
    def test_learns_blobs(self, rng):
        X, y = blobs(rng)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_class_priors_match_frequencies(self, rng):
        X, y = blobs(rng, n=200)
        y[:150] = 0  # unbalance
        model = GaussianNaiveBayes().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(np.mean(y == 0))

    def test_predict_proba_valid(self, rng):
        X, y = blobs(rng)
        proba = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestKNN:
    def test_learns_blobs(self, rng):
        X, y = blobs(rng)
        model = KNeighborsClassifier(n_neighbors=5).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_k_larger_than_dataset_raises(self, rng):
        X, y = blobs(rng, n=10)
        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=50).fit(X, y)

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(metric="cosine")

    def test_kneighbors_returns_sorted_distances(self, rng):
        X, y = blobs(rng)
        model = KNeighborsClassifier(n_neighbors=4).fit(X, y)
        distances, indices = model.kneighbors(X[:3])
        assert distances.shape == (3, 4)
        assert np.all(np.diff(distances, axis=1) >= -1e-12)

    def test_distance_weighting_prefers_close_neighbors(self, rng):
        X = np.array([[0.0], [0.1], [10.0], [10.1], [0.05]])
        y = np.array([0, 0, 1, 1, 0])
        model = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.02]]))[0] == 0


class TestMLP:
    def test_learns_xor(self, rng):
        X, y = xor_data(rng)
        model = MLPClassifier(hidden_sizes=(16,), n_epochs=150, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    def test_loss_decreases(self, rng):
        X, y = blobs(rng)
        model = MLPClassifier(n_epochs=60, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_predict_proba_distribution(self, rng):
        X, y = blobs(rng)
        model = MLPClassifier(n_epochs=30).fit(X, y)
        proba = model.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_gradient_input_shape(self, rng):
        X, y = blobs(rng)
        model = MLPClassifier(n_epochs=30).fit(X, y)
        gradients = model.gradient_input(X[:4])
        assert gradients.shape == (4, 3)
