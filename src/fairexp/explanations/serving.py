"""Out-of-process serving: ONNX-style model export and remote scoring.

PRs 1–4 built the predict plumbing — the
:class:`~fairexp.explanations.backends.PredictBackend` protocol, process
sharding, the session-scoped executor pool — but every predict still ran
in-process against the from-scratch training classes.  This module supplies
the two real out-of-process backends the ROADMAP asks for:

* :class:`ComputeGraph` / :func:`export_model` — an "ONNX-style" export: a
  fitted linear / MLP / tree / forest model is compiled to a serializable
  list of NumPy ops (``standardize``, ``matvec``, ``matmul``, ``relu``,
  ``softmax``, ``forest`` …) that reproduces ``model.predict`` **bitwise**
  without importing :mod:`fairexp.models`.  Graphs pickle into process-shard
  specs and :meth:`~ComputeGraph.save` to ``.npz`` files a scoring server in
  another process can load.
* :class:`OnnxExportBackend` — a
  :class:`~fairexp.explanations.backends.CallablePredictBackend` over an
  exported graph (``releases_gil=True``: the graph is pure vectorized
  NumPy), verified against the source model at construction.
* :class:`ScoringServer` + :class:`RemoteScoringBackend` — a loopback HTTP
  scoring server (also shipped as ``python -m fairexp serve``) and its
  batched client.  One server hosts a whole model **fleet**: graphs are
  keyed by content hash (:meth:`ComputeGraph.signature`, the same identity
  the persistent store fingerprints by), requests carry the hash in an
  ``X-Fairexp-Graph`` header and are routed to the matching graph.  The
  client side is a :class:`CoalescingScoringClient`: predict batches from
  *concurrent* sessions that land within a dispatch window are stacked
  into **one** wire call per graph, while each caller's call/row
  accounting is folded back into its own backend only after the dispatch
  succeeds — N concurrent sessions issue strictly fewer wire calls than N
  independent ones (asserted in ``benchmarks/test_bench_serving.py`` and
  ``benchmarks/test_bench_serving_fleet.py``).  The window is either a
  fixed number of seconds or ``"auto"``: an EWMA of observed
  inter-arrival times per graph, clamped to configurable bounds, so a
  busy lane dispatches quickly and a sparse one waits longer for peers.

Sustained overload degrades gracefully instead of queueing without bound:
the server tracks its in-flight batch count and, past ``max_inflight``,
answers new batches with a fast ``429`` *shed* reply that the client turns
into a bounded retry-with-backoff — rows are only counted after a dispatch
finally succeeds, so shed-then-retry never skews session accounting.

The wire format is deliberately boring: ``POST /score`` with a raw ``.npy``
payload of the candidate matrix, answered with a raw ``.npy`` payload of the
labels.  No pickle crosses the wire, so a server never executes anything a
client sends.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..exceptions import ValidationError
from ..lint.tsan import guard_counters, make_condition, make_lock
from .backends import CallablePredictBackend, NumpyPredictBackend

__all__ = [
    "ComputeGraph",
    "export_model",
    "OnnxExportBackend",
    "CoalescingScoringClient",
    "RemoteScoringBackend",
    "ScoringServer",
    "serve_model",
    "serve_fleet",
]


# ---------------------------------------------------------------------------
# Compute-graph export
# ---------------------------------------------------------------------------
def _softmax_rows(z: np.ndarray) -> np.ndarray:
    # Bitwise mirror of fairexp.utils.softmax (axis=-1) so the exported MLP
    # graph reproduces predict_proba exactly without importing fairexp.utils.
    shifted = z - np.max(z, axis=-1, keepdims=True)
    exp_z = np.exp(shifted)
    return exp_z / np.sum(exp_z, axis=-1, keepdims=True)


def _run_packed_tree(tree: dict, X: np.ndarray) -> np.ndarray:
    """Evaluate one packed decision tree: per-row leaf value vectors.

    Nodes are stored as parallel arrays (``feature`` is ``-1`` at leaves);
    every row starts at the root and is routed ``x[feature] <= threshold``
    → left child, exactly the comparison ``TreeNode.predict_one`` makes, so
    each row lands on the identical leaf and returns its stored ``value``.
    """
    feature, threshold = tree["feature"], tree["threshold"]
    left, right, value = tree["left"], tree["right"], tree["value"]
    nodes = np.zeros(X.shape[0], dtype=np.int64)
    pending = feature[nodes] >= 0
    while np.any(pending):
        idx = nodes[pending]
        go_left = X[pending, feature[idx]] <= threshold[idx]
        nodes[pending] = np.where(go_left, left[idx], right[idx])
        pending = feature[nodes] >= 0
    return value[nodes]


def _apply_op(op: dict, X: np.ndarray) -> np.ndarray:
    """Apply one graph op.  Each arm mirrors the source model's own NumPy
    expression token for token — that equivalence is what makes the whole
    graph bitwise-equal to ``model.predict``."""
    kind = op["op"]
    if kind == "standardize":
        return (X - op["mean"]) / op["scale"]
    if kind == "matvec":
        return X @ op["w"] + op["b"]
    if kind == "matmul":
        return X @ op["w"]
    if kind == "add":
        return X + op["b"]
    if kind == "relu":
        return np.maximum(X, 0.0)
    if kind == "softmax":
        return _softmax_rows(X)
    if kind == "ge_zero":
        return (X >= 0).astype(int)
    if kind == "argmax_classes":
        return op["classes"][np.argmax(X, axis=1)]
    if kind == "forest":
        n_classes = int(op["n_classes"])
        total = np.zeros((X.shape[0], n_classes))
        for tree in op["trees"]:
            proba = _run_packed_tree(tree, X)
            aligned = np.zeros((X.shape[0], n_classes))
            for j, column in enumerate(tree["align"]):
                aligned[:, int(column)] = proba[:, j]
            total += aligned
        return total / float(op["divisor"])
    raise ValidationError(f"unknown compute-graph op {kind!r}")


class ComputeGraph:
    """A serializable op list evaluated with nothing but NumPy.

    This is the "ONNX-style" export target: :func:`export_model` compiles a
    fitted model into a graph, and :meth:`run` replays the model's own
    predict arithmetic op by op — bitwise-equal labels, no
    :mod:`fairexp.models` import required.  Graphs pickle (into
    process-shard specs) and round-trip through :meth:`save` /
    :meth:`load` ``.npz`` files (how ``python -m fairexp serve`` receives a
    model without receiving code).
    """

    FORMAT_VERSION = 1

    def __init__(self, ops: list[dict], *, n_features: int,
                 source: str = "unknown") -> None:
        self.ops = list(ops)
        self.n_features = int(n_features)
        self.source = str(source)

    def run(self, X) -> np.ndarray:
        """Labels for ``X``: every op applied in order."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValidationError(
                f"graph expects {self.n_features} features, got {X.shape[1]}"
            )
        out = X
        for op in self.ops:
            out = _apply_op(op, out)
        return np.asarray(out)

    # Exported graphs slot directly into CallablePredictBackend(fn=graph).
    __call__ = run

    def signature(self) -> str:
        """Content digest of the graph (ops, shapes and every weight byte).

        This is the graph's identity for the persistent store's dispatch
        token: two sessions scoring through byte-identical graphs share
        counterfactual entries, any weight or topology difference keys them
        apart — reproducible across processes, unlike a pickled closure.
        """
        digest = hashlib.sha256()
        for key, array in sorted(self._flatten().items()):
            digest.update(key.encode())
            digest.update(str(array.dtype).encode() + str(array.shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        names = "->".join(op["op"] for op in self.ops)
        return f"ComputeGraph({self.source}: {names})"

    # ------------------------------------------------------------ round-trip
    def _flatten(self) -> dict[str, np.ndarray]:
        """Graph as flat ``{key: array}`` pairs (the ``.npz`` payload)."""
        arrays: dict[str, np.ndarray] = {
            "__meta__": np.frombuffer(json.dumps({
                "format_version": self.FORMAT_VERSION,
                "n_features": self.n_features,
                "source": self.source,
                "ops": [op["op"] for op in self.ops],
            }).encode("utf-8"), dtype=np.uint8),
        }
        for i, op in enumerate(self.ops):
            for key, val in op.items():
                if key == "op":
                    continue
                if key == "trees":
                    for t, tree in enumerate(val):
                        for tree_key, arr in tree.items():
                            arrays[f"op{i}.t{t}.{tree_key}"] = np.asarray(arr)
                else:
                    arrays[f"op{i}.{key}"] = np.asarray(val)
        return arrays

    def save(self, path) -> None:
        """Persist the graph to a compressed ``.npz`` archive."""
        np.savez_compressed(path, **self._flatten())

    @classmethod
    def load(cls, path) -> "ComputeGraph":
        """Load a graph previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as payload:
            try:
                meta = json.loads(bytes(payload["__meta__"]).decode("utf-8"))
            except (KeyError, ValueError) as error:
                raise ValidationError(f"not a compute-graph archive: {path}") from error
            if meta.get("format_version") != cls.FORMAT_VERSION:
                raise ValidationError(
                    f"unsupported compute-graph format {meta.get('format_version')!r}"
                )
            ops: list[dict] = []
            for i, kind in enumerate(meta["ops"]):
                op: dict = {"op": kind}
                trees: dict[int, dict] = {}
                prefix = f"op{i}."
                for key in payload.files:
                    if not key.startswith(prefix):
                        continue
                    tail = key[len(prefix):]
                    if tail.startswith("t") and "." in tail:
                        index, _, tree_key = tail.partition(".")
                        trees.setdefault(int(index[1:]), {})[tree_key] = payload[key]
                    else:
                        value = payload[key]
                        op[tail] = value if value.ndim else value[()]
                if trees:
                    op["trees"] = [trees[t] for t in sorted(trees)]
                ops.append(op)
        return cls(ops, n_features=int(meta["n_features"]), source=meta["source"])


def _pack_tree(root, n_classes: int, align: np.ndarray) -> dict:
    """Flatten a fitted ``TreeNode`` tree into parallel node arrays."""
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[np.ndarray] = []

    def walk(node) -> int:
        index = len(feature)
        feature.append(-1 if node.is_leaf else int(node.feature))
        threshold.append(float(node.threshold))
        left.append(-1)
        right.append(-1)
        value.append(np.asarray(node.value, dtype=float))
        if not node.is_leaf:
            left[index] = walk(node.left)
            right[index] = walk(node.right)
        return index

    walk(root)
    return {
        "feature": np.asarray(feature, dtype=np.int64),
        "threshold": np.asarray(threshold, dtype=float),
        "left": np.asarray(left, dtype=np.int64),
        "right": np.asarray(right, dtype=np.int64),
        "value": np.vstack(value),
        "align": np.asarray(align, dtype=np.int64),
    }


def export_model(model) -> ComputeGraph:
    """Compile a fitted fairexp model to a :class:`ComputeGraph`.

    Dispatch is structural (duck-typed on fitted attributes), so the export
    covers every from-scratch family used by experiments E1–E9 without
    importing their classes:

    * linear (``coef_`` / ``intercept_`` with a ``>= 0`` decision):
      :class:`~fairexp.models.LogisticRegression` and the mitigation
      classifiers built on the same surface;
    * MLP (``weights_`` / ``biases_`` with internal standardization):
      :class:`~fairexp.models.MLPClassifier`;
    * decision trees and forests (``root_`` / ``estimators_``):
      :class:`~fairexp.models.DecisionTreeClassifier` and
      :class:`~fairexp.models.RandomForestClassifier`.

    The returned graph's :meth:`~ComputeGraph.run` is bitwise-equal to
    ``model.predict`` (asserted per model family in
    ``tests/explanations/test_serving.py``); anything else raises a
    :class:`~fairexp.exceptions.ValidationError` naming the model type.
    """
    name = type(model).__name__
    estimators = getattr(model, "estimators_", None)
    if estimators:
        classes = np.asarray(model.classes_)
        trees = []
        for tree in estimators:
            align = np.asarray([
                int(np.flatnonzero(classes == cls)[0]) for cls in tree.classes_
            ], dtype=np.int64)
            trees.append(_pack_tree(tree.root_, classes.shape[0], align))
        ops = [
            {"op": "forest", "n_classes": classes.shape[0],
             "divisor": float(len(trees)), "trees": trees},
            {"op": "argmax_classes", "classes": classes},
        ]
        return ComputeGraph(ops, n_features=int(estimators[0].n_features_),
                            source=name)
    if getattr(model, "root_", None) is not None:
        classes = np.asarray(model.classes_)
        align = np.arange(classes.shape[0], dtype=np.int64)
        ops = [
            {"op": "forest", "n_classes": classes.shape[0], "divisor": 1.0,
             "trees": [_pack_tree(model.root_, classes.shape[0], align)]},
            {"op": "argmax_classes", "classes": classes},
        ]
        return ComputeGraph(ops, n_features=int(model.n_features_), source=name)
    weights = getattr(model, "weights_", None)
    if weights:
        ops: list[dict] = [{
            "op": "standardize",
            "mean": np.asarray(model._mean, dtype=float),
            "scale": np.asarray(model._scale, dtype=float),
        }]
        for layer, (W, b) in enumerate(zip(weights, model.biases_)):
            ops.append({"op": "matmul", "w": np.asarray(W, dtype=float)})
            ops.append({"op": "add", "b": np.asarray(b, dtype=float)})
            ops.append({"op": "relu"} if layer < len(weights) - 1
                       else {"op": "softmax"})
        ops.append({"op": "argmax_classes", "classes": np.asarray(model.classes_)})
        return ComputeGraph(ops, n_features=weights[0].shape[0], source=name)
    coef = getattr(model, "coef_", None)
    if coef is not None:
        coef = np.asarray(coef, dtype=float)
        ops = [
            {"op": "matvec", "w": coef, "b": float(model.intercept_)},
            {"op": "ge_zero"},
        ]
        return ComputeGraph(ops, n_features=coef.shape[0], source=name)
    raise ValidationError(
        f"cannot export {name} to a compute graph: expected a fitted linear "
        "(coef_/intercept_), MLP (weights_/biases_), tree (root_) or forest "
        "(estimators_) model"
    )


class OnnxExportBackend(CallablePredictBackend):
    """Predict backend over an exported :class:`ComputeGraph`.

    Scoring never touches the training class: the graph is pure NumPy, so
    the backend declares ``releases_gil=True`` (BLAS/ufunc loops drop the
    GIL and thread-sharding scales), and the graph ships whole into
    process-shard specs — workers and remote processes score without
    importing :mod:`fairexp.models`.

    Parameters
    ----------
    model_or_graph:
        A fitted model (compiled via :func:`export_model`) or an existing
        :class:`ComputeGraph` (e.g. loaded from an ``.npz`` export).
    verify_on:
        Optional matrix checked at construction: the graph's labels must be
        bitwise-equal to ``model.predict`` on it, so an unfaithful export
        fails fast instead of silently skewing an audit.  Requires a model
        (ignored for pre-built graphs).
    """

    # The engine may rebuild this backend inside process-shard workers by
    # shipping ``fn`` (the picklable graph) — see engine._process_shard_spec.
    ships_fn_to_workers = True

    def __init__(self, model_or_graph, *, name: str = "onnx",
                 verify_on=None) -> None:
        if isinstance(model_or_graph, ComputeGraph):
            graph, model = model_or_graph, None
        else:
            graph, model = export_model(model_or_graph), model_or_graph
        super().__init__(graph, name=name, releases_gil=True)
        self.graph = graph
        if verify_on is not None and model is not None:
            reference = np.asarray(model.predict(verify_on))
            exported = graph.run(verify_on)
            if not np.array_equal(reference, exported):
                raise ValidationError(
                    f"exported graph diverges from {type(model).__name__}."
                    "predict on the verification matrix"
                )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
def _encode_array(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _decode_array(blob: bytes) -> np.ndarray:
    return np.load(io.BytesIO(blob), allow_pickle=False)


# ---------------------------------------------------------------------------
# Scoring server
# ---------------------------------------------------------------------------
@guard_counters("request_count", "row_count", "shed_count", "pool_shed_count",
                "peak_inflight", "_inflight")
class ScoringServer:
    """Loopback HTTP scoring server hosting a fleet of scorers.

    ``POST /score`` takes a raw ``.npy`` matrix and answers with a raw
    ``.npy`` label vector; ``GET /healthz`` answers ``ok``; ``GET /stats``
    reports the JSON from :meth:`stats` — global and per-graph request/row
    counters, shed counts, the last client-reported window per graph and
    the server-side coalescing factor.  The server binds loopback only
    (scoring audits is not an internet service) and runs its request loop
    on a daemon thread; it is a context manager, and :meth:`close` is
    idempotent and thread-safe.

    **Fleet routing.**  ``scorer`` may be a single scorer, a list of
    :class:`ComputeGraph`\\ s, or a ``{key: scorer}`` mapping: every scorer
    is registered under a routing key — a graph's content hash
    (:meth:`ComputeGraph.signature`) when it has one — and requests carry
    the key in an ``X-Fairexp-Graph`` header.  A server hosting exactly one
    scorer also accepts header-less requests (the single-graph wire shape
    of earlier releases); a fleet rejects them with ``400``.

    **Admission control.**  ``max_inflight`` bounds concurrently admitted
    ``/score`` batches.  Past the bound, new batches get a fast ``429``
    reply with a ``Retry-After`` hint instead of deepening the queue — the
    client's bounded retry-with-backoff (see
    :class:`CoalescingScoringClient`) turns sustained overload into higher
    latency rather than unbounded server memory growth.  ``None`` (the
    default) disables shedding.

    With ``pool=`` (an :class:`~fairexp.explanations.pool.ExecutorPool`)
    scorer evaluation runs on the pool's thread executor instead of the
    request thread, so busy-worker / queue-depth numbers show up in the
    pool's (and this server's) stats.  ``max_pending`` then adds a second
    shed condition on the pool itself: a batch is refused (same fast 429)
    whenever the attached pool's thread queue depth
    (:meth:`ExecutorPool.pending`) has reached the bound — the in-flight
    gauge counts batches *this server* admitted, while ``pending()`` sees
    the whole queue, including work other holders of a shared pool
    submitted, so a saturated scorer pool sheds even when few requests are
    formally in flight.  Pool-depth sheds are booked separately as
    ``pool_shed`` in :meth:`stats`.

    ``python -m fairexp serve --graph a.npz --graph b.npz`` wraps this
    class around :class:`ComputeGraph` archives, which is how a scoring
    process serves a model fleet without importing (or even having) the
    training code.
    """

    def __init__(self, scorer, *, host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int | None = None, max_pending: int | None = None,
                 retry_after: float = 0.05, pool=None) -> None:
        if max_pending is not None and pool is None:
            raise ValidationError(
                "max_pending= bounds the attached pool's queue depth; "
                "it requires pool="
            )
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.retry_after = float(retry_after)
        self.pool = pool
        self.request_count = 0
        self.row_count = 0
        self.shed_count = 0
        self.pool_shed_count = 0
        self.peak_inflight = 0
        self._inflight = 0
        self._scorers: dict[str, object] = {}
        self._sources: dict[str, str] = {}
        self._graph_stats: dict[str, dict] = {}
        self._anonymous = 0
        self._closed = False
        self._lock = make_lock()
        self._close_lock = threading.Lock()
        if isinstance(scorer, dict):
            for key, item in scorer.items():
                self.add_scorer(item, key=key)
        elif isinstance(scorer, (list, tuple)):
            for item in scorer:
                self.add_scorer(item)
        else:
            self.add_scorer(scorer)
        if not self._scorers:
            raise ValidationError("ScoringServer needs at least one scorer")
        # Kept for single-scorer back-compat introspection.
        self.scorer = next(iter(self._scorers.values()))
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Request handler bound to this server's fleet and counters."""

            def log_message(self, *args):
                """Silence per-request stderr noise (stats are on /stats)."""

            def _reply(self, status: int, body: bytes,
                       content_type: str = "application/octet-stream",
                       headers: dict | None = None) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                """Serve the ``/healthz`` probe and the ``/stats`` counters."""
                if self.path == "/healthz":
                    self._reply(200, b"ok", "text/plain")
                elif self.path == "/stats":
                    self._reply(200, json.dumps(server.stats()).encode(),
                                "application/json")
                else:
                    self._reply(404, b"not found", "text/plain")

            def do_POST(self):
                """Score one ``/score`` batch: ``.npy`` matrix in, labels out."""
                if self.path != "/score":
                    self._reply(404, b"not found", "text/plain")
                    return
                key, refusal = server._route(self.headers.get("X-Fairexp-Graph"))
                if refusal is not None:
                    status, message = refusal
                    self._reply(status, message.encode(), "text/plain")
                    return
                if not server._admit(key):
                    # Fast shed: the client backs off and retries instead of
                    # this batch deepening an already-saturated queue.
                    self._reply(
                        429,
                        b"shed: server at its admission limit",
                        "text/plain",
                        headers={"Retry-After": f"{server.retry_after:.3f}"},
                    )
                    return
                # The inflight gauge covers decode + score + count — the
                # work admission control bounds — and is released BEFORE the
                # reply is written, so a client reading /stats right after
                # its response never observes its own finished batch as
                # still in flight.
                try:
                    try:
                        length = int(self.headers.get("Content-Length", "0"))
                        X = _decode_array(self.rfile.read(length))
                        labels = np.asarray(server._score(key, X))
                    except Exception as error:  # noqa: BLE001 - wire boundary
                        self._reply(400, str(error).encode(), "text/plain")
                        return
                    server._count(
                        key, int(np.atleast_2d(X).shape[0]),
                        self.headers.get("X-Fairexp-Batches"),
                        self.headers.get("X-Fairexp-Window"),
                    )
                finally:
                    server._leave()
                self._reply(200, _encode_array(labels))

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="fairexp-scoring-server", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ fleet
    def add_scorer(self, scorer, *, key: str | None = None) -> str:
        """Register one scorer and return its routing key.

        ``key`` defaults to the scorer's content hash
        (:meth:`ComputeGraph.signature`) when it has one — the identity the
        persistent store fingerprints by, so a client holding a graph can
        derive the route without asking the server — and a per-server
        ``scorer-N`` placeholder for bare callables.
        """
        fn = scorer if callable(scorer) else scorer.predict
        if key is None:
            signature = getattr(scorer, "signature", None)
            if callable(signature):
                key = signature()
            else:
                key = f"scorer-{self._anonymous}"
                self._anonymous += 1
        key = str(key)
        with self._lock:
            self._scorers[key] = fn
            self._sources[key] = str(getattr(scorer, "source",
                                             type(scorer).__name__))
            self._graph_stats.setdefault(key, {
                "requests": 0, "rows": 0, "shed": 0,
                "client_batches": 0, "window": None,
            })
        return key

    def graph_keys(self) -> list[str]:
        """Routing keys of every hosted scorer, in registration order."""
        with self._lock:
            return list(self._scorers)

    def _route(self, header: str | None):
        """Resolve a request's routing key: ``(key, None)`` or
        ``(None, (status, message))`` when the request must be refused."""
        with self._lock:
            if header:
                if header in self._scorers:
                    return header, None
                known = ", ".join(key[:12] for key in self._scorers)
                return None, (404, f"unknown graph {header!r}; hosting: {known}")
            if len(self._scorers) == 1:
                return next(iter(self._scorers)), None
            return None, (400,
                          f"this server hosts {len(self._scorers)} graphs; "
                          "requests must carry an X-Fairexp-Graph header")

    # -------------------------------------------------------------- admission
    def _admit(self, key: str) -> bool:
        """Admit one batch, or count a shed when a saturation bound is hit.

        Two independent bounds: ``max_inflight`` on this server's own
        admitted-batch gauge, and ``max_pending`` on the attached pool's
        thread queue depth — the latter sees submissions from *every*
        holder of a shared pool, so scorer-pool saturation sheds load even
        when this server's in-flight count is low.
        """
        with self._lock:
            if (self.max_inflight is not None
                    and self._inflight >= self.max_inflight):
                return self._shed_locked(key)
            if (self.max_pending is not None and self.pool is not None
                    and self.pool.pending("thread") >= self.max_pending):
                self.pool_shed_count += 1
                return self._shed_locked(key)
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            return True

    def _shed_locked(self, key: str) -> bool:
        """Book one refused batch (global + per-graph); returns ``False``."""
        self.shed_count += 1
        stats = self._graph_stats.get(key)
        if stats is not None:
            stats["shed"] += 1
        return False

    def _leave(self) -> None:
        with self._lock:
            self._inflight -= 1

    def _score(self, key: str, X: np.ndarray) -> np.ndarray:
        scorer = self._scorers[key]
        if self.pool is not None:
            return self.pool.map("thread", scorer, [X])[0]
        return scorer(X)

    def _count(self, key: str, rows: int, batches_header: str | None,
               window_header: str | None) -> None:
        """Fold one successfully scored batch into the global and per-graph
        counters (client-reported coalesced-batch count and window along)."""
        try:
            batches = max(1, int(batches_header or "1"))
        except ValueError:
            batches = 1
        try:
            window = None if window_header is None else float(window_header)
        except ValueError:
            window = None
        with self._lock:
            self.request_count += 1
            self.row_count += rows
            stats = self._graph_stats[key]
            stats["requests"] += 1
            stats["rows"] += rows
            stats["client_batches"] += batches
            if window is not None:
                stats["window"] = window

    def stats(self) -> dict:
        """Global and per-graph serving counters (the ``/stats`` payload).

        Per graph: ``requests`` / ``rows`` (successful wire batches and
        their rows), ``shed`` (batches refused at the admission limit),
        ``client_batches`` (caller batches the clients coalesced into those
        requests), the derived ``coalescing_factor`` and the last
        client-reported dispatch ``window``.  Globals keep the legacy
        ``requests`` / ``rows`` names, plus ``shed`` (every refusal),
        ``pool_shed`` (the subset refused on attached-pool queue depth),
        ``inflight`` / ``peak_inflight`` and the configured
        ``max_inflight`` / ``max_pending``.  With an attached pool, its
        per-kind utilization rides along under ``pool``.
        """
        with self._lock:
            graphs = {}
            for key in self._scorers:
                entry = dict(self._graph_stats[key])
                entry["source"] = self._sources[key]
                entry["coalescing_factor"] = (
                    entry["client_batches"] / entry["requests"]
                    if entry["requests"] else None
                )
                graphs[key] = entry
            payload = {
                "requests": self.request_count,
                "rows": self.row_count,
                "shed": self.shed_count,
                "pool_shed": self.pool_shed_count,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "max_inflight": self.max_inflight,
                "max_pending": self.max_pending,
                "graphs": graphs,
            }
        if self.pool is not None:
            payload["pool"] = self.pool.stats()
        return payload

    # -------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        """Base URL of the running server (``http://host:port``)."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_until_interrupted(self) -> None:
        """Block the calling thread until the server stops.

        Returns when :meth:`close` is called from another thread or the
        wait is interrupted (Ctrl-C) — this is what ``python -m fairexp
        serve`` parks its main thread on.
        """
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        """Stop serving, join the request loop and release the socket.

        Idempotent and thread-safe: concurrent closers serialize on a
        lock, so every ``close()`` call returns only once the request-loop
        thread has actually exited — racing ``close`` against interpreter
        shutdown can no longer leak a live daemon thread behind the first
        caller's back.  The thread is joined *before* the socket closes so
        the serve loop never touches a dead socket.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._httpd.server_close()

    def __enter__(self) -> "ScoringServer":
        """Use the server as a context manager; :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop the server on block exit."""
        self.close()


def serve_model(model, *, host: str = "127.0.0.1", port: int = 0,
                max_inflight: int | None = None) -> ScoringServer:
    """Start a loopback :class:`ScoringServer` over ``model``'s exported graph.

    Convenience for tests, benchmarks and the experiment runners'
    ``backend="remote"`` mode: the model is compiled with
    :func:`export_model` so the serving path is the same one a separate
    ``python -m fairexp serve`` process would run.
    """
    return ScoringServer(export_model(model), host=host, port=port,
                         max_inflight=max_inflight)


def serve_fleet(models_or_graphs, *, host: str = "127.0.0.1", port: int = 0,
                max_inflight: int | None = None, max_pending: int | None = None,
                pool=None) -> ScoringServer:
    """Start one loopback :class:`ScoringServer` hosting a whole model fleet.

    Each element of ``models_or_graphs`` is a fitted model (compiled via
    :func:`export_model`) or an existing :class:`ComputeGraph`; every graph
    is routed by its content hash.  This is the in-process twin of
    ``python -m fairexp serve --graph a.npz --graph b.npz``.
    """
    graphs = [graph if isinstance(graph, ComputeGraph) else export_model(graph)
              for graph in models_or_graphs]
    return ScoringServer(graphs, host=host, port=port,
                         max_inflight=max_inflight, max_pending=max_pending,
                         pool=pool)


# ---------------------------------------------------------------------------
# Coalescing remote client
# ---------------------------------------------------------------------------
class _PendingScore:
    """One caller's batch waiting for a coalesced wire call."""

    __slots__ = ("X", "event", "result", "error")

    def __init__(self, X: np.ndarray) -> None:
        self.X = X
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: Exception | None = None


class _ShedError(Exception):
    """A ``429`` shed reply from the server (internal to the retry loop)."""

    def __init__(self, retry_after: float, detail: str) -> None:
        super().__init__(detail)
        self.retry_after = retry_after


def _retry_backoff_sleep(delay: float) -> None:
    """Park the dispatching thread between shed retries.

    The one sanctioned ``time.sleep`` on the client path (lint rule FX007):
    naming the pause for its backoff role keeps it patchable in tests and
    visibly scoped to the retry ladder.
    """
    time.sleep(delay)


class _Lane:
    """One graph's dispatch lane: pending batches, leadership and window.

    Coalescing is per graph — batches bound for different graphs can never
    share a wire call — so every piece of window state (pending queue,
    leader flag, registered-peer count, EWMA inter-arrival estimate and the
    current window) lives on the lane, keyed by the graph's routing hash
    (``None`` for the header-less single-graph wire shape).
    """

    __slots__ = ("key", "pending", "leader_active", "registered",
                 "window", "ewma_interval", "last_arrival")

    def __init__(self, key: str | None, window: float) -> None:
        self.key = key
        self.pending: list[_PendingScore] = []
        self.leader_active = False
        self.registered = 0
        self.window = window
        self.ewma_interval: float | None = None
        self.last_arrival: float | None = None


@guard_counters("wire_call_count", "wire_row_count", "coalesced_count",
                "shed_count", "retry_count", lock_attr="_cond")
class CoalescingScoringClient:
    """Batched scoring client with per-graph cross-caller request coalescing.

    Callers block in :meth:`score`; the first caller to arrive **on a
    graph's lane** becomes the *leader* of that lane's dispatch window.
    The leader waits until either every peer registered on the lane has a
    batch pending or the window elapses, then stacks all pending matrices
    into ONE ``POST /score`` wire call (carrying the graph hash) and fans
    the label slices back out.  Concurrent sessions sharing a client
    therefore issue strictly fewer wire calls than the same sessions with
    private clients — the tentpole's serving acceptance criterion — and a
    fleet of graphs multiplexes over one client without cross-graph
    batches ever mixing.

    A failed wire call raises in **every** coalesced caller; backends count
    calls/rows only after a successful dispatch (see
    :class:`~fairexp.explanations.backends.NumpyPredictBackend.predict`), so
    a scorer timeout never inflates session accounting.  A ``429`` shed
    reply (the server's admission limit) is retried with exponential
    backoff up to ``max_retries`` times before failing the batch — rows
    are still only counted once, after the dispatch that finally lands.

    Parameters
    ----------
    url:
        Base URL of a :class:`ScoringServer` (``http://127.0.0.1:PORT``).
    window:
        Seconds a lane's leader waits for peers before dispatching.  ``0``
        disables coalescing (every batch is its own wire call); a positive
        float is a fixed window (bit-compatible with earlier releases);
        ``"auto"`` sizes each lane's window dynamically from an EWMA of
        that lane's observed inter-arrival times — ``window_gain`` times
        the EWMA, clamped to ``window_bounds`` — so a busy lane dispatches
        quickly and a sparse one waits longer for peers.
    timeout:
        Socket timeout for the wire call.
    window_bounds, ewma_alpha, window_gain:
        Dynamic-window tuning: the ``(min, max)`` clamp, the EWMA smoothing
        factor, and the multiple of the mean inter-arrival time the window
        targets.  Ignored for fixed windows.
    max_retries, backoff:
        Shed handling: how many times a shed batch is re-dispatched, and
        the base backoff delay (doubled per attempt; the server's
        ``Retry-After`` hint overrides the base when larger).

    Attributes
    ----------
    wire_call_count, wire_row_count:
        Wire calls issued and total rows across them — the observable the
        coalescing benchmark asserts on.
    coalesced_count:
        Number of caller batches that shared another batch's wire call.
    shed_count, retry_count:
        Shed replies received and re-dispatches performed recovering from
        them.
    """

    def __init__(self, url: str, *, window=0.02, timeout: float = 30.0,
                 window_bounds: tuple = (0.002, 0.25),
                 ewma_alpha: float = 0.25, window_gain: float = 4.0,
                 max_retries: int = 8, backoff: float = 0.05) -> None:
        self.url = url.rstrip("/")
        self.dynamic_window = window == "auto"
        self.window = window if self.dynamic_window else float(window)
        self.timeout = float(timeout)
        self.window_bounds = (float(window_bounds[0]), float(window_bounds[1]))
        self.ewma_alpha = float(ewma_alpha)
        self.window_gain = float(window_gain)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.wire_call_count = 0
        self.wire_row_count = 0
        self.coalesced_count = 0
        self.shed_count = 0
        self.retry_count = 0
        self._lanes: dict[str | None, _Lane] = {}
        self._cond = make_condition()

    # ---------------------------------------------------------------- lanes
    @staticmethod
    def _lane_key(graph) -> str | None:
        """Normalize a graph argument to a routing key: ``None``, a hash
        string, or anything exposing ``signature()`` (a ComputeGraph)."""
        if graph is None:
            return None
        signature = getattr(graph, "signature", None)
        if callable(signature):
            return signature()
        return str(graph)

    def _lane_locked(self, key: str | None) -> _Lane:
        lane = self._lanes.get(key)
        if lane is None:
            initial = self.window_bounds[1] if self.dynamic_window else self.window
            lane = _Lane(key, initial)
            self._lanes[key] = lane
        return lane

    @property
    def registered_count(self) -> int:
        """Registered callers across every lane."""
        with self._cond:
            return sum(lane.registered for lane in self._lanes.values())

    def current_window(self, graph=None) -> float:
        """The dispatch window a graph's lane would use right now."""
        with self._cond:
            return self._lane_locked(self._lane_key(graph)).window

    def lane_stats(self) -> dict:
        """Per-lane window state: registered peers, current window and the
        EWMA inter-arrival estimate driving it (``""`` keys the default
        lane)."""
        with self._cond:
            return {
                lane.key or "": {
                    "registered": lane.registered,
                    "window": lane.window,
                    "ewma_interval": lane.ewma_interval,
                }
                for lane in self._lanes.values()
            }

    # ----------------------------------------------------------- registration
    def register(self, graph=None) -> None:
        """Announce one more concurrent caller on a graph's lane.

        The lane's window leader stops waiting as soon as every registered
        caller has a batch pending, which makes the first wave of a
        concurrent sweep coalesce deterministically instead of racing the
        window.
        """
        with self._cond:
            self._lane_locked(self._lane_key(graph)).registered += 1

    def unregister(self, graph=None) -> None:
        """Detach one caller from a graph's lane (a backend closing)."""
        with self._cond:
            lane = self._lane_locked(self._lane_key(graph))
            lane.registered = max(0, lane.registered - 1)
            self._cond.notify_all()

    # -------------------------------------------------------------- scoring
    def score(self, X: np.ndarray, graph=None) -> np.ndarray:
        """Labels for ``X`` via a (possibly shared) wire call on the
        graph's lane."""
        request = _PendingScore(np.atleast_2d(np.asarray(X, dtype=float)))
        with self._cond:
            lane = self._lane_locked(self._lane_key(graph))
            self._observe_arrival(lane)
            lane.pending.append(request)
            self._cond.notify_all()
            lead = not lane.leader_active
            if lead:
                lane.leader_active = True
        if lead:
            self._lead_dispatch(lane)
        request.event.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def _observe_arrival(self, lane: _Lane) -> None:
        """Fold one batch arrival into the lane's EWMA inter-arrival
        estimate and (for ``window="auto"``) resize its window (caller
        holds the lock)."""
        now = time.monotonic()
        if lane.last_arrival is not None:
            delta = now - lane.last_arrival
            if lane.ewma_interval is None:
                lane.ewma_interval = delta
            else:
                lane.ewma_interval = (self.ewma_alpha * delta
                                      + (1.0 - self.ewma_alpha) * lane.ewma_interval)
            if self.dynamic_window:
                low, high = self.window_bounds
                lane.window = min(high, max(low,
                                            self.window_gain * lane.ewma_interval))
        lane.last_arrival = now

    def _lead_dispatch(self, lane: _Lane) -> None:
        """Run one dispatch window on a lane: wait for peers, flush."""
        start = time.monotonic()
        with self._cond:
            while True:
                enough = (lane.registered > 0
                          and len(lane.pending) >= lane.registered)
                # Re-read the window every pass: a dynamic lane may shrink
                # (or grow) while the leader waits.
                remaining = start + lane.window - time.monotonic()
                if enough or remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch, lane.pending = lane.pending, []
            lane.leader_active = False
        self._flush(lane, batch)

    def _flush(self, lane: _Lane, batch: list[_PendingScore]) -> None:
        """Dispatch one stacked batch, retrying through shed replies."""
        def fail(error: Exception) -> None:
            for request in batch:
                request.error = error
                request.event.set()

        stacked = np.vstack([request.X for request in batch])
        attempt = 0
        while True:
            try:
                labels = self._wire_call(stacked, lane, len(batch))
                if labels.shape[0] != stacked.shape[0]:
                    raise ValidationError(
                        f"scoring server returned {labels.shape[0]} labels "
                        f"for {stacked.shape[0]} rows"
                    )
                break
            except _ShedError as shed:
                with self._cond:
                    self.shed_count += 1
                if attempt >= self.max_retries:
                    fail(ValidationError(
                        f"scoring server shed the batch {attempt + 1} times "
                        f"(admission limit); giving up after "
                        f"{self.max_retries} retries"
                    ))
                    return
                # Exponential backoff from the server's Retry-After hint
                # (capped: a deep backoff ladder must not stall a session
                # for longer than the overload it is riding out).
                delay = min(max(shed.retry_after, self.backoff)
                            * (2.0 ** attempt), 1.0)
                _retry_backoff_sleep(delay)
                with self._cond:
                    self.retry_count += 1
                attempt += 1
            except Exception as error:  # noqa: BLE001 - fan the failure out
                fail(error)
                return
        with self._cond:
            self.wire_call_count += 1
            self.wire_row_count += int(stacked.shape[0])
            self.coalesced_count += len(batch) - 1
        offset = 0
        for request in batch:
            n = request.X.shape[0]
            request.result = labels[offset:offset + n]
            offset += n
            request.event.set()

    def _wire_call(self, X: np.ndarray, lane: _Lane, n_batches: int) -> np.ndarray:
        headers = {
            "Content-Type": "application/octet-stream",
            # The server folds these into its per-graph /stats: how many
            # caller batches this wire call coalesces, and the window the
            # lane is currently running.
            "X-Fairexp-Batches": str(n_batches),
            "X-Fairexp-Window": f"{lane.window:.6f}",
        }
        if lane.key is not None:
            headers["X-Fairexp-Graph"] = lane.key
        request = urllib.request.Request(
            f"{self.url}/score", data=_encode_array(X),
            headers=headers, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return np.asarray(_decode_array(response.read()))
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace")
            if error.code == 429:
                try:
                    retry_after = float(error.headers.get("Retry-After") or 0.0)
                except (TypeError, ValueError):
                    retry_after = 0.0
                raise _ShedError(retry_after, detail) from error
            raise ValidationError(
                f"scoring server rejected the batch ({error.code}): {detail}"
            ) from error
        except urllib.error.URLError as error:
            # Connection refused / reset (e.g. the server closed with this
            # batch in flight) surfaces as the library's own exception, not
            # a raw socket error — callers see a clean backend failure.
            raise ValidationError(
                f"scoring server unreachable at {self.url}: {error.reason}"
            ) from error


class RemoteScoringBackend(NumpyPredictBackend):
    """Predict backend over a remote :class:`ScoringServer`.

    Concurrent sessions that share one :class:`CoalescingScoringClient`
    (pass the client instead of a URL) have their predict batches stacked
    into shared wire calls; each backend still counts **its own** calls and
    rows — and only after the dispatch succeeded — so per-session
    accounting sums to exactly what independent runs would report, shed
    retries included.

    Against a fleet server, ``graph`` selects which hosted graph this
    backend's batches route to: a :class:`ComputeGraph` (its content hash
    is derived), a hash string, or ``None`` for the single-graph wire
    shape.  Batches for different graphs ride different lanes of the
    shared client and never mix in a wire call.  The graph hash doubles as
    the backend's *store identity*: sessions driven through a graph-routed
    remote backend fingerprint by it (never by the ephemeral server
    endpoint), so their populations stay store-addressable across server
    restarts; a graph-less remote backend has no reproducible predictor
    identity and skips the persistent store.

    The backend declares ``releases_gil=True``: the wire call blocks on a
    socket, so thread-sharding across it scales (and is what lets the
    batches of several shards coalesce at all).
    """

    ships_fn_to_workers = False  # the client's locks must not cross processes

    def __init__(self, url_or_client, *, name: str = "remote", graph=None,
                 window=0.02, timeout: float = 30.0,
                 max_retries: int = 8, backoff: float = 0.05) -> None:
        if isinstance(url_or_client, CoalescingScoringClient):
            client = url_or_client
        else:
            client = CoalescingScoringClient(str(url_or_client), window=window,
                                             timeout=timeout,
                                             max_retries=max_retries,
                                             backoff=backoff)
        super().__init__(model=None)
        self.name = name
        self.releases_gil = True
        self.client = client
        self.graph_key = CoalescingScoringClient._lane_key(graph)
        self._detached = False
        client.register(graph=self.graph_key)

    def _run(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.client.score(X, graph=self.graph_key))

    def close(self) -> None:
        """Detach from the shared client (stops the leader waiting on us).

        Idempotent: a second close must not decrement ANOTHER live caller's
        registration — that would let the window leader believe every peer
        is gone and degrade coalescing to timeout-driven dispatch.
        """
        if self._detached:
            return
        self._detached = True
        self.client.unregister(graph=self.graph_key)
