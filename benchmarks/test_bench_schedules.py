"""Adaptive vs geometric search schedules: the PR's acceptance criteria.

Two claims are asserted on the E1 benchmark sweep:

* :class:`~fairexp.explanations.AdaptiveSchedule` performs **strictly
  fewer** engine predict calls (and schedule steps, and candidate draws)
  than :class:`~fairexp.explanations.GeometricSchedule`, while the audit's
  qualitative shape claims (burden gap, NAWB gap on the biased model) still
  hold;
* :class:`~fairexp.explanations.GeometricSchedule` remains **bitwise-equal**
  to the pre-refactor fixed widening under fixed seeds (checked against the
  sequential per-instance path, which still hard-codes the fixed ladder).

Both schedules' call/step/draw counts are recorded into
``BENCH_SCHEDULES.json`` so the trajectory tracks the adaptive win.
"""

import numpy as np

from conftest import record

from fairexp.datasets import make_loan_dataset
from fairexp.experiments import run_e1_e2_burden_nawb
from fairexp.explanations import (
    ActionabilityConstraints,
    AdaptiveSchedule,
    BatchModelAdapter,
    GrowingSpheresCounterfactual,
)
from fairexp.models import LogisticRegression


def test_adaptive_schedule_fewer_predict_calls_on_e1(benchmark):
    geometric = run_e1_e2_burden_nawb(n_samples=600, audit_size=80,
                                      schedule="geometric")
    adaptive = benchmark.pedantic(
        run_e1_e2_burden_nawb,
        kwargs={"n_samples": 600, "audit_size": 80, "schedule": "adaptive"},
        rounds=1, iterations=1,
    )

    # Strictly fewer engine predict calls (and schedule steps) on BOTH
    # workloads of the sweep — the tentpole's acceptance criterion.
    for label in ("biased", "fair"):
        assert 0 < adaptive[f"engine_predict_calls_{label}"] \
            < geometric[f"engine_predict_calls_{label}"], label
        assert adaptive[f"schedule_steps_{label}"] \
            < geometric[f"schedule_steps_{label}"], label
    # Candidate draws drop strictly on the hard (biased) workload, where the
    # geometric ladder wastes waves below the decision boundary.  (On the
    # near-boundary fair workload the feasibility probe's draws can offset
    # the saved waves; calls and steps still shrink, recorded either way.)
    assert adaptive["schedule_draws_biased"] < geometric["schedule_draws_biased"]

    # The cheaper search must not wash out the audit's qualitative shape.
    assert adaptive["burden_gap_biased"] > 0.5
    assert adaptive["nawb_gap_biased"] > 0.05
    assert abs(adaptive["burden_gap_fair"]) < adaptive["burden_gap_biased"] / 2

    record(benchmark, {
        **{f"adaptive_{key}": adaptive[key]
           for key in ("engine_predict_calls_biased", "schedule_steps_biased",
                       "schedule_draws_biased", "burden_gap_biased")},
        **{f"geometric_{key}": geometric[key]
           for key in ("engine_predict_calls_biased", "schedule_steps_biased",
                       "schedule_draws_biased", "burden_gap_biased")},
        "predict_call_reduction": (
            geometric["engine_predict_calls_biased"]
            / max(adaptive["engine_predict_calls_biased"], 1)
        ),
    }, experiment="SCHEDULES")


def test_geometric_schedule_bitwise_equal_to_fixed_ladder(benchmark):
    """The default schedule reproduces the pre-refactor search exactly."""
    dataset = make_loan_dataset(600, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    subset = test.subset(np.arange(min(80, test.n_samples)))
    rejected = subset.X[model.predict(subset.X) == 0]

    sequential_generator = GrowingSpheresCounterfactual(
        BatchModelAdapter(model, cache=False), train.X,
        constraints=constraints, random_state=0,
    )
    sequential = [sequential_generator.generate(row) for row in rejected]

    scheduled_adapter = BatchModelAdapter(model, cache=False)
    scheduled_generator = GrowingSpheresCounterfactual(
        scheduled_adapter, train.X, constraints=constraints, random_state=0,
        schedule="geometric",
    )
    batched = benchmark.pedantic(
        lambda: scheduled_generator.generate_batch_aligned(rejected),
        rounds=1, iterations=1,
    )
    for seq, bat in zip(sequential, batched):
        assert bat is not None
        assert np.array_equal(seq.counterfactual, bat.counterfactual)
        assert seq.changed_features == bat.changed_features
        assert seq.distance == bat.distance
    record(benchmark, {
        "n_instances": len(rejected),
        "schedule_steps": scheduled_generator.search_step_count,
        "schedule_draws": scheduled_generator.search_draw_count,
    }, adapter=scheduled_adapter, experiment="SCHEDULES_PARITY")


def test_adaptive_coverage_matches_geometric_on_e1(benchmark):
    """Fewer probes must not drop instances the fixed ladder can solve."""
    dataset = make_loan_dataset(600, direct_bias=1.2, recourse_gap=1.0,
                                random_state=0)
    train, test = dataset.split(test_size=0.3, random_state=1)
    model = LogisticRegression(n_iter=1200, random_state=0).fit(train.X, train.y)
    constraints = ActionabilityConstraints.from_feature_specs(dataset.features)
    rejected = test.X[model.predict(test.X) == 0]

    def solve(schedule):
        generator = GrowingSpheresCounterfactual(
            BatchModelAdapter(model, cache=False), train.X,
            constraints=constraints, random_state=0, schedule=schedule,
        )
        return generator.generate_batch_aligned(rejected)

    geometric = solve(None)
    adaptive = benchmark.pedantic(lambda: solve(AdaptiveSchedule()),
                                  rounds=1, iterations=1)
    solved_geometric = sum(r is not None for r in geometric)
    solved_adaptive = sum(r is not None for r in adaptive)
    assert solved_adaptive >= solved_geometric
    distances_geometric = float(np.mean([r.distance for r in geometric if r]))
    distances_adaptive = float(np.mean([r.distance for r in adaptive if r]))
    # Probing coarser rungs may cost some distance, but not a blow-up.
    assert distances_adaptive <= 1.5 * distances_geometric
    record(benchmark, {
        "coverage_geometric": solved_geometric / len(rejected),
        "coverage_adaptive": solved_adaptive / len(rejected),
        "mean_distance_geometric": distances_geometric,
        "mean_distance_adaptive": distances_adaptive,
    }, experiment="SCHEDULES_COVERAGE")
