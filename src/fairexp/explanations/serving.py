"""Out-of-process serving: ONNX-style model export and remote scoring.

PRs 1–4 built the predict plumbing — the
:class:`~fairexp.explanations.backends.PredictBackend` protocol, process
sharding, the session-scoped executor pool — but every predict still ran
in-process against the from-scratch training classes.  This module supplies
the two real out-of-process backends the ROADMAP asks for:

* :class:`ComputeGraph` / :func:`export_model` — an "ONNX-style" export: a
  fitted linear / MLP / tree / forest model is compiled to a serializable
  list of NumPy ops (``standardize``, ``matvec``, ``matmul``, ``relu``,
  ``softmax``, ``forest`` …) that reproduces ``model.predict`` **bitwise**
  without importing :mod:`fairexp.models`.  Graphs pickle into process-shard
  specs and :meth:`~ComputeGraph.save` to ``.npz`` files a scoring server in
  another process can load.
* :class:`OnnxExportBackend` — a
  :class:`~fairexp.explanations.backends.CallablePredictBackend` over an
  exported graph (``releases_gil=True``: the graph is pure vectorized
  NumPy), verified against the source model at construction.
* :class:`ScoringServer` + :class:`RemoteScoringBackend` — a loopback HTTP
  scoring server (also shipped as ``python -m fairexp serve``) and its
  batched client.  The client side is a :class:`CoalescingScoringClient`:
  predict batches from *concurrent* sessions that land within a small
  window are stacked into **one** wire call, while each caller's
  call/row accounting is folded back into its own backend only after the
  dispatch succeeds — N concurrent sessions issue strictly fewer wire
  calls than N independent ones (asserted in
  ``benchmarks/test_bench_serving.py``).

The wire format is deliberately boring: ``POST /score`` with a raw ``.npy``
payload of the candidate matrix, answered with a raw ``.npy`` payload of the
labels.  No pickle crosses the wire, so a server never executes anything a
client sends.
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..exceptions import ValidationError
from .backends import CallablePredictBackend, NumpyPredictBackend

__all__ = [
    "ComputeGraph",
    "export_model",
    "OnnxExportBackend",
    "CoalescingScoringClient",
    "RemoteScoringBackend",
    "ScoringServer",
    "serve_model",
]


# ---------------------------------------------------------------------------
# Compute-graph export
# ---------------------------------------------------------------------------
def _softmax_rows(z: np.ndarray) -> np.ndarray:
    # Bitwise mirror of fairexp.utils.softmax (axis=-1) so the exported MLP
    # graph reproduces predict_proba exactly without importing fairexp.utils.
    shifted = z - np.max(z, axis=-1, keepdims=True)
    exp_z = np.exp(shifted)
    return exp_z / np.sum(exp_z, axis=-1, keepdims=True)


def _run_packed_tree(tree: dict, X: np.ndarray) -> np.ndarray:
    """Evaluate one packed decision tree: per-row leaf value vectors.

    Nodes are stored as parallel arrays (``feature`` is ``-1`` at leaves);
    every row starts at the root and is routed ``x[feature] <= threshold``
    → left child, exactly the comparison ``TreeNode.predict_one`` makes, so
    each row lands on the identical leaf and returns its stored ``value``.
    """
    feature, threshold = tree["feature"], tree["threshold"]
    left, right, value = tree["left"], tree["right"], tree["value"]
    nodes = np.zeros(X.shape[0], dtype=np.int64)
    pending = feature[nodes] >= 0
    while np.any(pending):
        idx = nodes[pending]
        go_left = X[pending, feature[idx]] <= threshold[idx]
        nodes[pending] = np.where(go_left, left[idx], right[idx])
        pending = feature[nodes] >= 0
    return value[nodes]


def _apply_op(op: dict, X: np.ndarray) -> np.ndarray:
    """Apply one graph op.  Each arm mirrors the source model's own NumPy
    expression token for token — that equivalence is what makes the whole
    graph bitwise-equal to ``model.predict``."""
    kind = op["op"]
    if kind == "standardize":
        return (X - op["mean"]) / op["scale"]
    if kind == "matvec":
        return X @ op["w"] + op["b"]
    if kind == "matmul":
        return X @ op["w"]
    if kind == "add":
        return X + op["b"]
    if kind == "relu":
        return np.maximum(X, 0.0)
    if kind == "softmax":
        return _softmax_rows(X)
    if kind == "ge_zero":
        return (X >= 0).astype(int)
    if kind == "argmax_classes":
        return op["classes"][np.argmax(X, axis=1)]
    if kind == "forest":
        n_classes = int(op["n_classes"])
        total = np.zeros((X.shape[0], n_classes))
        for tree in op["trees"]:
            proba = _run_packed_tree(tree, X)
            aligned = np.zeros((X.shape[0], n_classes))
            for j, column in enumerate(tree["align"]):
                aligned[:, int(column)] = proba[:, j]
            total += aligned
        return total / float(op["divisor"])
    raise ValidationError(f"unknown compute-graph op {kind!r}")


class ComputeGraph:
    """A serializable op list evaluated with nothing but NumPy.

    This is the "ONNX-style" export target: :func:`export_model` compiles a
    fitted model into a graph, and :meth:`run` replays the model's own
    predict arithmetic op by op — bitwise-equal labels, no
    :mod:`fairexp.models` import required.  Graphs pickle (into
    process-shard specs) and round-trip through :meth:`save` /
    :meth:`load` ``.npz`` files (how ``python -m fairexp serve`` receives a
    model without receiving code).
    """

    FORMAT_VERSION = 1

    def __init__(self, ops: list[dict], *, n_features: int,
                 source: str = "unknown") -> None:
        self.ops = list(ops)
        self.n_features = int(n_features)
        self.source = str(source)

    def run(self, X) -> np.ndarray:
        """Labels for ``X``: every op applied in order."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.n_features:
            raise ValidationError(
                f"graph expects {self.n_features} features, got {X.shape[1]}"
            )
        out = X
        for op in self.ops:
            out = _apply_op(op, out)
        return np.asarray(out)

    # Exported graphs slot directly into CallablePredictBackend(fn=graph).
    __call__ = run

    def signature(self) -> str:
        """Content digest of the graph (ops, shapes and every weight byte).

        This is the graph's identity for the persistent store's dispatch
        token: two sessions scoring through byte-identical graphs share
        counterfactual entries, any weight or topology difference keys them
        apart — reproducible across processes, unlike a pickled closure.
        """
        digest = hashlib.sha256()
        for key, array in sorted(self._flatten().items()):
            digest.update(key.encode())
            digest.update(str(array.dtype).encode() + str(array.shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:
        names = "->".join(op["op"] for op in self.ops)
        return f"ComputeGraph({self.source}: {names})"

    # ------------------------------------------------------------ round-trip
    def _flatten(self) -> dict[str, np.ndarray]:
        """Graph as flat ``{key: array}`` pairs (the ``.npz`` payload)."""
        arrays: dict[str, np.ndarray] = {
            "__meta__": np.frombuffer(json.dumps({
                "format_version": self.FORMAT_VERSION,
                "n_features": self.n_features,
                "source": self.source,
                "ops": [op["op"] for op in self.ops],
            }).encode("utf-8"), dtype=np.uint8),
        }
        for i, op in enumerate(self.ops):
            for key, val in op.items():
                if key == "op":
                    continue
                if key == "trees":
                    for t, tree in enumerate(val):
                        for tree_key, arr in tree.items():
                            arrays[f"op{i}.t{t}.{tree_key}"] = np.asarray(arr)
                else:
                    arrays[f"op{i}.{key}"] = np.asarray(val)
        return arrays

    def save(self, path) -> None:
        """Persist the graph to a compressed ``.npz`` archive."""
        np.savez_compressed(path, **self._flatten())

    @classmethod
    def load(cls, path) -> "ComputeGraph":
        """Load a graph previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as payload:
            try:
                meta = json.loads(bytes(payload["__meta__"]).decode("utf-8"))
            except (KeyError, ValueError) as error:
                raise ValidationError(f"not a compute-graph archive: {path}") from error
            if meta.get("format_version") != cls.FORMAT_VERSION:
                raise ValidationError(
                    f"unsupported compute-graph format {meta.get('format_version')!r}"
                )
            ops: list[dict] = []
            for i, kind in enumerate(meta["ops"]):
                op: dict = {"op": kind}
                trees: dict[int, dict] = {}
                prefix = f"op{i}."
                for key in payload.files:
                    if not key.startswith(prefix):
                        continue
                    tail = key[len(prefix):]
                    if tail.startswith("t") and "." in tail:
                        index, _, tree_key = tail.partition(".")
                        trees.setdefault(int(index[1:]), {})[tree_key] = payload[key]
                    else:
                        value = payload[key]
                        op[tail] = value if value.ndim else value[()]
                if trees:
                    op["trees"] = [trees[t] for t in sorted(trees)]
                ops.append(op)
        return cls(ops, n_features=int(meta["n_features"]), source=meta["source"])


def _pack_tree(root, n_classes: int, align: np.ndarray) -> dict:
    """Flatten a fitted ``TreeNode`` tree into parallel node arrays."""
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[np.ndarray] = []

    def walk(node) -> int:
        index = len(feature)
        feature.append(-1 if node.is_leaf else int(node.feature))
        threshold.append(float(node.threshold))
        left.append(-1)
        right.append(-1)
        value.append(np.asarray(node.value, dtype=float))
        if not node.is_leaf:
            left[index] = walk(node.left)
            right[index] = walk(node.right)
        return index

    walk(root)
    return {
        "feature": np.asarray(feature, dtype=np.int64),
        "threshold": np.asarray(threshold, dtype=float),
        "left": np.asarray(left, dtype=np.int64),
        "right": np.asarray(right, dtype=np.int64),
        "value": np.vstack(value),
        "align": np.asarray(align, dtype=np.int64),
    }


def export_model(model) -> ComputeGraph:
    """Compile a fitted fairexp model to a :class:`ComputeGraph`.

    Dispatch is structural (duck-typed on fitted attributes), so the export
    covers every from-scratch family used by experiments E1–E9 without
    importing their classes:

    * linear (``coef_`` / ``intercept_`` with a ``>= 0`` decision):
      :class:`~fairexp.models.LogisticRegression` and the mitigation
      classifiers built on the same surface;
    * MLP (``weights_`` / ``biases_`` with internal standardization):
      :class:`~fairexp.models.MLPClassifier`;
    * decision trees and forests (``root_`` / ``estimators_``):
      :class:`~fairexp.models.DecisionTreeClassifier` and
      :class:`~fairexp.models.RandomForestClassifier`.

    The returned graph's :meth:`~ComputeGraph.run` is bitwise-equal to
    ``model.predict`` (asserted per model family in
    ``tests/explanations/test_serving.py``); anything else raises a
    :class:`~fairexp.exceptions.ValidationError` naming the model type.
    """
    name = type(model).__name__
    estimators = getattr(model, "estimators_", None)
    if estimators:
        classes = np.asarray(model.classes_)
        trees = []
        for tree in estimators:
            align = np.asarray([
                int(np.flatnonzero(classes == cls)[0]) for cls in tree.classes_
            ], dtype=np.int64)
            trees.append(_pack_tree(tree.root_, classes.shape[0], align))
        ops = [
            {"op": "forest", "n_classes": classes.shape[0],
             "divisor": float(len(trees)), "trees": trees},
            {"op": "argmax_classes", "classes": classes},
        ]
        return ComputeGraph(ops, n_features=int(estimators[0].n_features_),
                            source=name)
    if getattr(model, "root_", None) is not None:
        classes = np.asarray(model.classes_)
        align = np.arange(classes.shape[0], dtype=np.int64)
        ops = [
            {"op": "forest", "n_classes": classes.shape[0], "divisor": 1.0,
             "trees": [_pack_tree(model.root_, classes.shape[0], align)]},
            {"op": "argmax_classes", "classes": classes},
        ]
        return ComputeGraph(ops, n_features=int(model.n_features_), source=name)
    weights = getattr(model, "weights_", None)
    if weights:
        ops: list[dict] = [{
            "op": "standardize",
            "mean": np.asarray(model._mean, dtype=float),
            "scale": np.asarray(model._scale, dtype=float),
        }]
        for layer, (W, b) in enumerate(zip(weights, model.biases_)):
            ops.append({"op": "matmul", "w": np.asarray(W, dtype=float)})
            ops.append({"op": "add", "b": np.asarray(b, dtype=float)})
            ops.append({"op": "relu"} if layer < len(weights) - 1
                       else {"op": "softmax"})
        ops.append({"op": "argmax_classes", "classes": np.asarray(model.classes_)})
        return ComputeGraph(ops, n_features=weights[0].shape[0], source=name)
    coef = getattr(model, "coef_", None)
    if coef is not None:
        coef = np.asarray(coef, dtype=float)
        ops = [
            {"op": "matvec", "w": coef, "b": float(model.intercept_)},
            {"op": "ge_zero"},
        ]
        return ComputeGraph(ops, n_features=coef.shape[0], source=name)
    raise ValidationError(
        f"cannot export {name} to a compute graph: expected a fitted linear "
        "(coef_/intercept_), MLP (weights_/biases_), tree (root_) or forest "
        "(estimators_) model"
    )


class OnnxExportBackend(CallablePredictBackend):
    """Predict backend over an exported :class:`ComputeGraph`.

    Scoring never touches the training class: the graph is pure NumPy, so
    the backend declares ``releases_gil=True`` (BLAS/ufunc loops drop the
    GIL and thread-sharding scales), and the graph ships whole into
    process-shard specs — workers and remote processes score without
    importing :mod:`fairexp.models`.

    Parameters
    ----------
    model_or_graph:
        A fitted model (compiled via :func:`export_model`) or an existing
        :class:`ComputeGraph` (e.g. loaded from an ``.npz`` export).
    verify_on:
        Optional matrix checked at construction: the graph's labels must be
        bitwise-equal to ``model.predict`` on it, so an unfaithful export
        fails fast instead of silently skewing an audit.  Requires a model
        (ignored for pre-built graphs).
    """

    # The engine may rebuild this backend inside process-shard workers by
    # shipping ``fn`` (the picklable graph) — see engine._process_shard_spec.
    ships_fn_to_workers = True

    def __init__(self, model_or_graph, *, name: str = "onnx",
                 verify_on=None) -> None:
        if isinstance(model_or_graph, ComputeGraph):
            graph, model = model_or_graph, None
        else:
            graph, model = export_model(model_or_graph), model_or_graph
        super().__init__(graph, name=name, releases_gil=True)
        self.graph = graph
        if verify_on is not None and model is not None:
            reference = np.asarray(model.predict(verify_on))
            exported = graph.run(verify_on)
            if not np.array_equal(reference, exported):
                raise ValidationError(
                    f"exported graph diverges from {type(model).__name__}."
                    "predict on the verification matrix"
                )


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
def _encode_array(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _decode_array(blob: bytes) -> np.ndarray:
    return np.load(io.BytesIO(blob), allow_pickle=False)


# ---------------------------------------------------------------------------
# Scoring server
# ---------------------------------------------------------------------------
class ScoringServer:
    """Loopback HTTP scoring server over any ``f(X) -> labels`` scorer.

    ``POST /score`` takes a raw ``.npy`` matrix and answers with a raw
    ``.npy`` label vector; ``GET /healthz`` answers ``ok``; ``GET /stats``
    reports ``{"requests": n, "rows": m}`` — the *server-side* wire-call
    count the CI smoke test asserts coalescing against.  The server binds
    loopback only (scoring audits is not an internet service) and runs its
    request loop on a daemon thread; it is a context manager, and
    :meth:`close` is idempotent.

    ``python -m fairexp serve --graph model.npz`` wraps this class around a
    :class:`ComputeGraph` archive, which is how a scoring process serves a
    model without importing (or even having) the training code.
    """

    def __init__(self, scorer, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self.scorer = scorer if callable(scorer) else scorer.predict
        self.request_count = 0
        self.row_count = 0
        self._closed = False
        self._lock = threading.Lock()
        server = self

        class Handler(BaseHTTPRequestHandler):
            """Request handler bound to this server's scorer and counters."""

            def log_message(self, *args):
                """Silence per-request stderr noise (stats are on /stats)."""

            def _reply(self, status: int, body: bytes,
                       content_type: str = "application/octet-stream") -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                """Serve the ``/healthz`` probe and the ``/stats`` counters."""
                if self.path == "/healthz":
                    self._reply(200, b"ok", "text/plain")
                elif self.path == "/stats":
                    with server._lock:
                        stats = {"requests": server.request_count,
                                 "rows": server.row_count}
                    self._reply(200, json.dumps(stats).encode(), "application/json")
                else:
                    self._reply(404, b"not found", "text/plain")

            def do_POST(self):
                """Score one ``/score`` batch: ``.npy`` matrix in, labels out."""
                if self.path != "/score":
                    self._reply(404, b"not found", "text/plain")
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    X = _decode_array(self.rfile.read(length))
                    labels = np.asarray(server.scorer(X))
                except Exception as error:  # noqa: BLE001 - wire boundary
                    self._reply(400, str(error).encode(), "text/plain")
                    return
                with server._lock:
                    server.request_count += 1
                    server.row_count += int(np.atleast_2d(X).shape[0])
                self._reply(200, _encode_array(labels))

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="fairexp-scoring-server", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        """Base URL of the running server (``http://host:port``)."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_until_interrupted(self) -> None:
        """Block the calling thread until the server stops.

        Returns when :meth:`close` is called from another thread or the
        wait is interrupted (Ctrl-C) — this is what ``python -m fairexp
        serve`` parks its main thread on.
        """
        try:
            while self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "ScoringServer":
        """Use the server as a context manager; :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop the server on block exit."""
        self.close()


def serve_model(model, *, host: str = "127.0.0.1", port: int = 0) -> ScoringServer:
    """Start a loopback :class:`ScoringServer` over ``model``'s exported graph.

    Convenience for tests, benchmarks and the experiment runners'
    ``backend="remote"`` mode: the model is compiled with
    :func:`export_model` so the serving path is the same one a separate
    ``python -m fairexp serve`` process would run.
    """
    return ScoringServer(export_model(model), host=host, port=port)


# ---------------------------------------------------------------------------
# Coalescing remote client
# ---------------------------------------------------------------------------
class _PendingScore:
    """One caller's batch waiting for a coalesced wire call."""

    __slots__ = ("X", "event", "result", "error")

    def __init__(self, X: np.ndarray) -> None:
        self.X = X
        self.event = threading.Event()
        self.result: np.ndarray | None = None
        self.error: Exception | None = None


class CoalescingScoringClient:
    """Batched scoring client with cross-caller request coalescing.

    Callers block in :meth:`score`; the first caller to arrive becomes the
    *leader* of a dispatch window.  The leader waits until either every
    registered peer has a batch pending or ``window`` seconds elapse, then
    stacks all pending matrices into ONE ``POST /score`` wire call and
    fans the label slices back out.  Concurrent sessions sharing a client
    therefore issue strictly fewer wire calls than the same sessions with
    private clients — the tentpole's serving acceptance criterion.

    A failed wire call raises in **every** coalesced caller; backends count
    calls/rows only after a successful dispatch (see
    :class:`~fairexp.explanations.backends.NumpyPredictBackend.predict`), so
    a scorer timeout never inflates session accounting.

    Parameters
    ----------
    url:
        Base URL of a :class:`ScoringServer` (``http://127.0.0.1:PORT``).
    window:
        Seconds the window leader waits for peers before dispatching.
        ``0`` disables coalescing (every batch is its own wire call).
    timeout:
        Socket timeout for the wire call.

    Attributes
    ----------
    wire_call_count, wire_row_count:
        Wire calls issued and total rows across them — the observable the
        coalescing benchmark asserts on.
    coalesced_count:
        Number of caller batches that shared another batch's wire call.
    """

    def __init__(self, url: str, *, window: float = 0.02,
                 timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.window = float(window)
        self.timeout = float(timeout)
        self.wire_call_count = 0
        self.wire_row_count = 0
        self.coalesced_count = 0
        self.registered_count = 0
        self._pending: list[_PendingScore] = []
        self._leader_active = False
        self._cond = threading.Condition()

    # ----------------------------------------------------------- registration
    def register(self) -> None:
        """Announce one more concurrent caller (a backend attaching).

        The window leader stops waiting as soon as every registered caller
        has a batch pending, which makes the first wave of a concurrent
        sweep coalesce deterministically instead of racing the window.
        """
        with self._cond:
            self.registered_count += 1

    def unregister(self) -> None:
        """Detach one caller (a backend closing)."""
        with self._cond:
            self.registered_count = max(0, self.registered_count - 1)
            self._cond.notify_all()

    # -------------------------------------------------------------- scoring
    def score(self, X: np.ndarray) -> np.ndarray:
        """Labels for ``X`` via a (possibly shared) wire call."""
        request = _PendingScore(np.atleast_2d(np.asarray(X, dtype=float)))
        with self._cond:
            self._pending.append(request)
            self._cond.notify_all()
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        if lead:
            self._lead_dispatch()
        request.event.wait()
        if request.error is not None:
            raise request.error
        return request.result

    def _lead_dispatch(self) -> None:
        """Run one dispatch window: wait for peers, flush the batch."""
        deadline = time.monotonic() + self.window
        with self._cond:
            while True:
                enough = (self.registered_count > 0
                          and len(self._pending) >= self.registered_count)
                remaining = deadline - time.monotonic()
                if enough or remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch, self._pending = self._pending, []
            self._leader_active = False
        self._flush(batch)

    def _flush(self, batch: list[_PendingScore]) -> None:
        try:
            stacked = np.vstack([request.X for request in batch])
            labels = self._wire_call(stacked)
            if labels.shape[0] != stacked.shape[0]:
                raise ValidationError(
                    f"scoring server returned {labels.shape[0]} labels "
                    f"for {stacked.shape[0]} rows"
                )
        except Exception as error:  # noqa: BLE001 - fan the failure out
            for request in batch:
                request.error = error
                request.event.set()
            return
        with self._cond:
            self.wire_call_count += 1
            self.wire_row_count += int(stacked.shape[0])
            self.coalesced_count += len(batch) - 1
        offset = 0
        for request in batch:
            n = request.X.shape[0]
            request.result = labels[offset:offset + n]
            offset += n
            request.event.set()

    def _wire_call(self, X: np.ndarray) -> np.ndarray:
        request = urllib.request.Request(
            f"{self.url}/score", data=_encode_array(X),
            headers={"Content-Type": "application/octet-stream"}, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return np.asarray(_decode_array(response.read()))
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace")
            raise ValidationError(
                f"scoring server rejected the batch ({error.code}): {detail}"
            ) from error


class RemoteScoringBackend(NumpyPredictBackend):
    """Predict backend over a remote :class:`ScoringServer`.

    Concurrent sessions that share one :class:`CoalescingScoringClient`
    (pass the client instead of a URL) have their predict batches stacked
    into shared wire calls; each backend still counts **its own** calls and
    rows — and only after the dispatch succeeded — so per-session
    accounting sums to exactly what independent runs would report.

    The backend declares ``releases_gil=True``: the wire call blocks on a
    socket, so thread-sharding across it scales (and is what lets the
    batches of several shards coalesce at all).
    """

    ships_fn_to_workers = False  # the client's locks must not cross processes

    def __init__(self, url_or_client, *, name: str = "remote",
                 window: float = 0.02, timeout: float = 30.0) -> None:
        if isinstance(url_or_client, CoalescingScoringClient):
            client = url_or_client
        else:
            client = CoalescingScoringClient(str(url_or_client), window=window,
                                             timeout=timeout)
        super().__init__(model=None)
        self.name = name
        self.releases_gil = True
        self.client = client
        self._detached = False
        client.register()

    def _run(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(self.client.score(X))

    def close(self) -> None:
        """Detach from the shared client (stops the leader waiting on us).

        Idempotent: a second close must not decrement ANOTHER live caller's
        registration — that would let the window leader believe every peer
        is gone and degrade coalescing to timeout-driven dispatch.
        """
        if self._detached:
            return
        self._detached = True
        self.client.unregister()
