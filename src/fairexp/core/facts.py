"""FACTS: Fairness-Aware Counterfactuals for Subgroups (Kavouras et al. [77]).

FACTS audits *recourse bias* between protected subgroups.  It

1. mines frequent predicate subgroups of the feature space (restricted to the
   negatively classified population),
2. enumerates candidate *actions* — conjunctions of feature changes derived
   from frequent value regions among the positively classified population,
3. measures, inside every subgroup, the *effectiveness*
   ``eff(a, G) = |{x in G : f(a(x)) = 1}| / |G|`` of every action separately
   for the protected and reference members, and the recourse cost of each
   action,
4. ranks subgroups by the gap in aggregate effectiveness (Equal Effectiveness)
   and in the number of sufficiently effective actions (Equal Choice for
   Recourse), the two fairness criteria the paper quotes:

   ``aeff(A, G+) = aeff(A, G-)`` and
   ``|{a : eff(a, G+) >= phi}| = |{a : eff(a, G-) >= phi}|``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..explanations.base import ExplainerInfo, ExplainerRegistry
from ..explanations.rules import Predicate, discretize_features, frequent_predicate_sets
from ..fairness.groups import group_masks
from ..utils import check_random_state

__all__ = ["Action", "SubgroupAudit", "FACTSResult", "FACTSExplainer"]


@dataclass(frozen=True)
class Action:
    """A candidate recourse action: set the listed features to target values."""

    changes: tuple[tuple[int, float], ...]  # (feature index, new value)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """A copy of ``X`` with the action's feature assignments applied."""
        modified = np.asarray(X, dtype=float).copy()
        for feature, value in self.changes:
            modified[:, feature] = value
        return modified

    def describe(self, feature_names: Sequence[str]) -> str:
        """Human-readable ``feature := value`` rendering of the action."""
        parts = [f"{feature_names[j]} := {value:.4g}" for j, value in self.changes]
        return " AND ".join(parts)

    def cost(self, X: np.ndarray, scale: np.ndarray) -> np.ndarray:
        """Per-row L1 recourse cost of applying this action (scaled)."""
        X = np.asarray(X, dtype=float)
        total = np.zeros(X.shape[0])
        for feature, value in self.changes:
            total += np.abs(value - X[:, feature]) / scale[feature]
        return total


@dataclass
class SubgroupAudit:
    """Recourse-bias audit of one subgroup.

    ``effectiveness_*`` is the aggregate effectiveness (fraction of affected
    individuals achieving recourse through at least one action);
    ``n_effective_actions_*`` counts actions whose per-group effectiveness
    exceeds the ``phi`` threshold (Equal Choice for Recourse).
    """

    predicates: tuple[Predicate, ...]
    n_protected: int
    n_reference: int
    effectiveness_protected: float
    effectiveness_reference: float
    n_effective_actions_protected: int
    n_effective_actions_reference: int
    mean_cost_protected: float
    mean_cost_reference: float
    per_action: list[dict] = field(default_factory=list, repr=False)

    @property
    def effectiveness_gap(self) -> float:
        """Equal-Effectiveness violation (reference minus protected; positive = bias against protected)."""
        return self.effectiveness_reference - self.effectiveness_protected

    @property
    def choice_gap(self) -> int:
        """Equal-Choice-for-Recourse violation (reference minus protected count)."""
        return self.n_effective_actions_reference - self.n_effective_actions_protected

    @property
    def cost_gap(self) -> float:
        """Mean recourse cost difference (protected minus reference)."""
        return self.mean_cost_protected - self.mean_cost_reference

    def describe(self, feature_names: Sequence[str] | None = None) -> str:
        """Human-readable summary of the subgroup's effectiveness gap."""
        clauses = " AND ".join(str(p) for p in self.predicates) or "TRUE"
        return (
            f"[{clauses}] eff(G-)={self.effectiveness_reference:.2f} "
            f"eff(G+)={self.effectiveness_protected:.2f} "
            f"gap={self.effectiveness_gap:+.2f} choice_gap={self.choice_gap:+d}"
        )


@dataclass
class FACTSResult:
    """Ranked subgroup audits plus the global (whole-population) audit."""

    subgroups: list[SubgroupAudit]
    global_audit: SubgroupAudit
    phi: float

    def top_biased(self, k: int = 5) -> list[SubgroupAudit]:
        """Subgroups with the largest Equal-Effectiveness violation against the protected group."""
        return sorted(self.subgroups, key=lambda s: -s.effectiveness_gap)[:k]

    def is_fair(self, *, tolerance: float = 0.05) -> bool:
        """Whether every audited subgroup satisfies equal effectiveness within tolerance."""
        return all(abs(s.effectiveness_gap) <= tolerance for s in self.subgroups)


@ExplainerRegistry.register("facts", capabilities=("fairness-explainer", "counterfactual-based"))
class FACTSExplainer:
    """Frequent-itemset audit of recourse bias between protected subgroups.

    Parameters
    ----------
    model:
        Classifier under audit (``predict``).
    feature_names:
        Column names.
    sensitive_index:
        Index of the sensitive column (excluded from subgroup predicates and
        from actions).
    n_bins:
        Discretization granularity for subgroup predicates.
    min_support:
        Minimum fraction of the negatively classified population a subgroup
        must cover.
    max_subgroup_length:
        Maximum number of predicates per subgroup.
    n_actions:
        Number of candidate actions enumerated.
    phi:
        Effectiveness threshold for the Equal-Choice-for-Recourse criterion.
    """

    info = ExplainerInfo(
        stage="post-hoc",
        access="black-box",
        agnostic=True,
        coverage="global",
        explanation_type="example",
        multiplicity="multiple",
    )

    def __init__(
        self,
        model,
        feature_names: Sequence[str],
        sensitive_index: int,
        *,
        n_bins: int = 3,
        min_support: float = 0.1,
        max_subgroup_length: int = 2,
        n_actions: int = 20,
        phi: float = 0.3,
        actionable_indices: Sequence[int] | None = None,
        random_state=None,
    ) -> None:
        self.model = model
        self.feature_names = list(feature_names)
        self.sensitive_index = sensitive_index
        self.n_bins = n_bins
        self.min_support = min_support
        self.max_subgroup_length = max_subgroup_length
        self.n_actions = n_actions
        self.phi = phi
        self.actionable_indices = actionable_indices
        self.random_state = random_state

    # ------------------------------------------------------------- actions
    def _candidate_actions(self, X: np.ndarray, predictions: np.ndarray) -> list[Action]:
        """Derive candidate actions from feature values typical of the approved population."""
        rng = check_random_state(self.random_state)
        approved = X[predictions == 1]
        if approved.shape[0] == 0:
            return []
        actionable = (
            list(self.actionable_indices)
            if self.actionable_indices is not None
            else [j for j in range(X.shape[1]) if j != self.sensitive_index]
        )
        quantiles = (0.5, 0.75, 0.9)
        single_changes: list[tuple[int, float]] = []
        for j in actionable:
            for q in quantiles:
                single_changes.append((j, float(np.quantile(approved[:, j], q))))

        actions = [Action(changes=(change,)) for change in single_changes]
        # Pairwise combinations of the strongest single changes, sampled.
        n_pairs = max(0, self.n_actions - len(actions))
        for _ in range(n_pairs):
            first, second = rng.choice(len(single_changes), size=2, replace=False)
            a, b = single_changes[first], single_changes[second]
            if a[0] == b[0]:
                continue
            actions.append(Action(changes=tuple(sorted((a, b)))))
        # Deduplicate while keeping order, cap at n_actions.
        seen, unique = set(), []
        for action in actions:
            if action.changes in seen:
                continue
            seen.add(action.changes)
            unique.append(action)
        return unique[: self.n_actions]

    # --------------------------------------------------------------- audit
    def _audit_population(
        self,
        X: np.ndarray,
        affected_mask: np.ndarray,
        protected_mask: np.ndarray,
        actions: list[Action],
        scale: np.ndarray,
        predicates: tuple[Predicate, ...] = (),
    ) -> SubgroupAudit:
        protected_idx = np.flatnonzero(affected_mask & protected_mask)
        reference_idx = np.flatnonzero(affected_mask & ~protected_mask)

        def audit_side(idx: np.ndarray) -> tuple[float, int, float, list[float]]:
            if idx.shape[0] == 0:
                return 0.0, 0, 0.0, []
            rows = X[idx]
            achieved = np.zeros(idx.shape[0], dtype=bool)
            best_cost = np.full(idx.shape[0], np.inf)
            effectiveness_values = []
            for action in actions:
                modified = action.apply(rows)
                success = np.asarray(self.model.predict(modified)) == 1
                effectiveness_values.append(float(success.mean()))
                achieved |= success
                cost = action.cost(rows, scale)
                best_cost = np.where(success & (cost < best_cost), cost, best_cost)
            aggregate = float(achieved.mean())
            n_effective = int(sum(1 for e in effectiveness_values if e >= self.phi))
            finite_costs = best_cost[np.isfinite(best_cost)]
            mean_cost = float(finite_costs.mean()) if finite_costs.size else 0.0
            return aggregate, n_effective, mean_cost, effectiveness_values

        eff_protected, n_eff_protected, cost_protected, per_action_protected = audit_side(
            protected_idx
        )
        eff_reference, n_eff_reference, cost_reference, per_action_reference = audit_side(
            reference_idx
        )
        per_action = [
            {
                "action": action.describe(self.feature_names),
                "effectiveness_protected": ep,
                "effectiveness_reference": er,
            }
            for action, ep, er in zip(
                actions,
                per_action_protected or [0.0] * len(actions),
                per_action_reference or [0.0] * len(actions),
            )
        ]
        return SubgroupAudit(
            predicates=predicates,
            n_protected=int(protected_idx.shape[0]),
            n_reference=int(reference_idx.shape[0]),
            effectiveness_protected=eff_protected,
            effectiveness_reference=eff_reference,
            n_effective_actions_protected=n_eff_protected,
            n_effective_actions_reference=n_eff_reference,
            mean_cost_protected=cost_protected,
            mean_cost_reference=cost_reference,
            per_action=per_action,
        )

    def explain(self, X, sensitive, *, protected_value=1, min_group_size: int = 5) -> FACTSResult:
        """Audit recourse bias across frequent subgroups of the rejected population."""
        X = np.asarray(X, dtype=float)
        sensitive = np.asarray(sensitive)
        predictions = np.asarray(self.model.predict(X))
        affected = predictions == 0
        masks = group_masks(sensitive, protected_value=protected_value)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0

        actions = self._candidate_actions(X, predictions)
        global_audit = self._audit_population(X, affected, masks.protected, actions, scale)

        feature_indices = [j for j in range(X.shape[1]) if j != self.sensitive_index]
        predicates = discretize_features(
            X[affected], feature_names=self.feature_names, n_bins=self.n_bins,
            feature_indices=feature_indices,
        )
        itemsets = frequent_predicate_sets(
            X[affected], predicates, min_support=self.min_support,
            max_length=self.max_subgroup_length,
        )

        audits = []
        affected_idx = np.flatnonzero(affected)
        for itemset, local_mask in itemsets:
            subgroup_mask = np.zeros(X.shape[0], dtype=bool)
            subgroup_mask[affected_idx[local_mask]] = True
            n_protected = int((subgroup_mask & masks.protected).sum())
            n_reference = int((subgroup_mask & masks.reference).sum())
            if min(n_protected, n_reference) < min_group_size:
                continue
            audit = self._audit_population(
                X, subgroup_mask, masks.protected, actions, scale, predicates=tuple(itemset)
            )
            audits.append(audit)

        audits.sort(key=lambda a: -abs(a.effectiveness_gap))
        return FACTSResult(subgroups=audits, global_audit=global_audit, phi=self.phi)
