"""Exception hierarchy for fairexp.

Every error raised intentionally by the library derives from
:class:`FairexpError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class FairexpError(Exception):
    """Base class for all errors raised by fairexp."""


class NotFittedError(FairexpError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ValidationError(FairexpError):
    """Raised when user-supplied data or parameters are invalid."""


class ConvergenceError(FairexpError):
    """Raised when an iterative procedure fails to converge."""


class InfeasibleRecourseError(FairexpError):
    """Raised when no counterfactual / recourse satisfying the constraints exists."""
