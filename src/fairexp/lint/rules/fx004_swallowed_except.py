"""FX004 — no silently swallowed exceptions.

Flags (a) bare ``except:`` that does not re-raise and (b) ``except
Exception``/``BaseException`` handlers whose body is nothing but
``pass``/``continue``/``...``.  Handlers that return a fallback, log, or
re-raise are deliberate degradation paths (the numba probes in
``kernels.py`` return ``False``) and stay legal — the rule targets the
handlers that erase the error entirely.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..engine import Rule
from .common import is_test_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Iterable

    from ..engine import FileContext, Finding

_OVERBROAD = frozenset({"Exception", "BaseException"})


def _catches_overbroad(handler_type: ast.AST) -> bool:
    """True when the handler catches Exception/BaseException (incl. tuples)."""
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _OVERBROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_catches_overbroad(element) for element in handler_type.elts)
    return False


def _body_is_noop(body: list[ast.stmt]) -> bool:
    """True when the handler body only passes/continues/ellipses."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or bare ``...``
        return False
    return True


def _body_reraises(body: list[ast.stmt]) -> bool:
    """True when any statement in the handler body raises."""
    return any(
        isinstance(inner, ast.Raise)
        for stmt in body
        for inner in ast.walk(stmt)
    )


class SwallowedExceptRule(Rule):
    """Flag handlers that erase errors without re-raise or fallback."""

    code = "FX004"
    summary = "bare/overbroad except that swallows without re-raise"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        """Flag bare excepts without re-raise and pass-only broad handlers."""
        assert isinstance(node, ast.ExceptHandler)
        if is_test_path(ctx.path):
            return
        if node.type is None:
            if not _body_reraises(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' swallows every error (including "
                    "KeyboardInterrupt); catch specific exceptions or "
                    "re-raise",
                )
        elif _catches_overbroad(node.type) and _body_is_noop(node.body):
            yield self.finding(
                ctx,
                node,
                "except Exception with a pass-only body erases the error; "
                "return a fallback, log, or narrow the exception type",
            )
